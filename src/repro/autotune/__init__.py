"""Model-guided autotuning: strategies, batched scoring, tournaments.

The subsystem that connects the paper's three pillars — the iterative
search baselines, the fitted predictive model, and the vectorised
simulate-many kernel — into one framework:

* :mod:`~repro.autotune.core` — :class:`SearchBudget` /
  :class:`SearchTrace` / :class:`SearchContext` and the
  :class:`SearchStrategy` protocol;
* :mod:`~repro.autotune.scorer` — the budget-enforcing, batch-pricing
  :class:`BatchScorer`;
* :mod:`~repro.autotune.strategies` — the four legacy searchers,
  re-homed (``repro.search`` keeps thin bit-identical shims);
* :mod:`~repro.autotune.guided` — :class:`ModelSeededGenetic` and
  :class:`BeamSearch`, where the model proposes and the simulator
  disposes;
* :mod:`~repro.autotune.tournament` — every strategy on one grid,
  scored by evaluations- and simulations-to-match-best.
"""

from repro.autotune.core import (
    SearchBudget,
    SearchContext,
    SearchStrategy,
    SearchTrace,
    TraceEntry,
    run_strategy,
    run_traced,
)
from repro.autotune.guided import GUIDED_STRATEGIES, BeamSearch, ModelSeededGenetic
from repro.autotune.scorer import BatchScorer
from repro.autotune.strategies import (
    BASELINE_STRATEGIES,
    CombinedElimination,
    Genetic,
    HillClimb,
    RandomSearch,
)
from repro.autotune.tournament import (
    ALL_STRATEGIES,
    StrategyStanding,
    TournamentResult,
    TournamentRun,
    check_model_beats_random,
    run_tournament,
)

__all__ = [
    "ALL_STRATEGIES",
    "BASELINE_STRATEGIES",
    "BatchScorer",
    "BeamSearch",
    "CombinedElimination",
    "GUIDED_STRATEGIES",
    "Genetic",
    "HillClimb",
    "ModelSeededGenetic",
    "RandomSearch",
    "SearchBudget",
    "SearchContext",
    "SearchStrategy",
    "SearchTrace",
    "StrategyStanding",
    "TournamentResult",
    "TournamentRun",
    "TraceEntry",
    "check_model_beats_random",
    "run_strategy",
    "run_traced",
    "run_tournament",
]
