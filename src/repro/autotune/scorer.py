"""The batched scorer: where candidates are priced and budgets enforced.

Strategies hand the scorer whole batches (a GA generation, a CE probing
round, a beam) and the scorer prices them in one
:meth:`~repro.search.evaluator.Evaluator.evaluate_many` pass — one
compile per uncached canonical setting plus a single vectorised
simulate-many call — instead of candidate-at-a-time scalar simulation.
Results are bit-identical to the sequential path (the PR-5 kernel
guarantee), so re-homing the legacy drivers onto the scorer changes
their cost, not their answers.

Budget enforcement lives here, not in the strategies: any request that
would cross the budget is truncated to the remaining allowance, so
``trace.evaluations <= budget`` holds no matter what a strategy does.
"""

from __future__ import annotations

from typing import Sequence

from repro.autotune.core import SearchBudget, SearchTrace
from repro.compiler.flags import FlagSetting
from repro.search.evaluator import Evaluator


class BatchScorer:
    """Prices candidates against one evaluator, recording every one.

    The scorer distinguishes *evaluations* (every scored candidate —
    what the budget bounds) from *simulations* (evaluator cache misses —
    the costly unit the tournament reports).  Freshness is decided
    before pricing, per canonical setting, with duplicates inside one
    batch charged a single simulation, exactly mirroring what
    ``evaluate_many`` actually runs.
    """

    def __init__(
        self, evaluator: Evaluator, budget: SearchBudget, trace: SearchTrace
    ):
        self.evaluator = evaluator
        self.budget = budget
        self.trace = trace

    @property
    def remaining(self) -> float:
        """Evaluations left before the budget is exhausted (may be inf)."""
        return self.budget.limit - self.trace.evaluations

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    def score(
        self, settings: Sequence[FlagSetting], source: str
    ) -> list[float]:
        """Price a batch, truncated to the remaining budget.

        Returns the runtimes of the scored prefix (shorter than the
        request iff the budget bit).  Every scored candidate lands in
        the trace with its provenance ``source`` and freshness.
        """
        allowed = self.remaining
        batch = list(settings)
        if len(batch) > allowed:
            batch = batch[: int(allowed)]
        if not batch:
            return []
        fresh_flags: list[bool] = []
        seen: set[FlagSetting] = set()
        for setting in batch:
            canonical = setting.canonical()
            fresh = not self.evaluator.is_cached(canonical) and canonical not in seen
            if fresh:
                seen.add(canonical)
            fresh_flags.append(fresh)
        runtimes = self.evaluator.evaluate_many(batch)
        for setting, runtime, fresh in zip(batch, runtimes, fresh_flags):
            self.trace.record(setting, runtime, source, fresh)
        return runtimes

    def score_one(self, setting: FlagSetting, source: str) -> float | None:
        """Price one candidate, or ``None`` when the budget is exhausted.

        Single candidates skip the batch kernel (a 1-wide batch would
        only add overhead) but share the same memo, accounting, and
        trace path.
        """
        if self.exhausted:
            return None
        canonical = setting.canonical()
        fresh = not self.evaluator.is_cached(canonical)
        runtime = self.evaluator.evaluate(setting)
        self.trace.record(setting, runtime, source, fresh)
        return runtime
