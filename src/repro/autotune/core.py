"""The autotuning core: budgets, traces, and the strategy protocol.

``repro.autotune`` unifies iterative compiler search under one framework.
A *strategy* proposes candidate flag settings; a :class:`BatchScorer`
(see :mod:`repro.autotune.scorer`) prices them through the memoising
:class:`~repro.search.evaluator.Evaluator` — batched, so whole
generations ride the vectorised simulate-many kernel — and records every
candidate into a :class:`SearchTrace`.  The trace is the single source
of truth for the paper's §5.3 metrics: evaluations-to-match-best and
simulations consumed.

Two cost units, deliberately distinct:

* **evaluations** — scored candidates (one :class:`TraceEntry` each,
  memo hits included).  This is what a :class:`SearchBudget` bounds and
  what the legacy drivers always counted.
* **simulations** — fresh compile-and-simulate calls (evaluator cache
  misses).  The genuinely costly unit the paper counts; always
  ``simulations <= evaluations``.

The budget is enforced *at the scorer*, not trusted to the strategy: a
strategy that over-asks has its request truncated, so no strategy can
exceed its budget even adversarially.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, FlagSpace
from repro.core.distribution import IIDDistribution
from repro.search.evaluator import Evaluator, SearchResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autotune.scorer import BatchScorer


@dataclass(frozen=True)
class SearchBudget:
    """A hard cap on scored candidates (``None`` = run to convergence).

    Matches the legacy drivers' ``budget`` semantics: every scored
    candidate counts, including evaluator memo hits (which consume no
    simulation).  The scorer truncates any request that would cross the
    cap, so the two legacy drivers that could historically overshoot by
    one at boundary budgets (genetic's last brood, combined
    elimination's unconditional recheck) are clamped exactly at it.
    """

    evaluations: int | None

    def __post_init__(self) -> None:
        if self.evaluations is not None and self.evaluations < 1:
            raise ValueError(f"budget must be >= 1: {self.evaluations}")

    @property
    def limit(self) -> float:
        return math.inf if self.evaluations is None else float(self.evaluations)


@dataclass(frozen=True)
class TraceEntry:
    """One scored candidate, in scoring order.

    Attributes:
        iteration: 1-based position in the trace.
        source: strategy-chosen provenance label (``"sample"``,
            ``"offspring"``, ``"probe"``, ``"beam"``, ...).
        setting: the candidate as proposed (uncanonicalised).
        runtime: its runtime in seconds.
        best_runtime: best runtime seen up to and including this entry
            (the convergence curve the §5.3 analysis reads).
        speedup_vs_o3: ``o3_runtime / runtime`` when the -O3 reference
            is known, else ``None``.
        fresh: whether this candidate cost a fresh simulation (an
            evaluator cache miss) rather than a memo hit.
        simulations: cumulative fresh simulations up to and including
            this entry.
    """

    iteration: int
    source: str
    setting: FlagSetting
    runtime: float
    best_runtime: float
    speedup_vs_o3: float | None
    fresh: bool
    simulations: int


class SearchTrace:
    """Every candidate evaluation of one search run, in order.

    Tracks the running best with a strict-``<`` first-wins rule — the
    exact tie-break every legacy driver used — and folds the best-so-far
    trajectory the moment each entry is recorded, so the trace and the
    legacy drivers' trajectories are bit-identical.
    """

    def __init__(self, o3_runtime: float | None = None):
        self.o3_runtime = o3_runtime
        self.entries: list[TraceEntry] = []
        self.best_setting: FlagSetting | None = None
        self.best_runtime: float = math.inf
        #: Strategies whose notion of "the answer" is not the trajectory
        #: floor (combined elimination returns its converged point, which
        #: a rejected probe may undercut) pin it here.
        self._final: tuple[FlagSetting, float] | None = None

    def record(
        self, setting: FlagSetting, runtime: float, source: str, fresh: bool
    ) -> None:
        if runtime < self.best_runtime:
            self.best_runtime = runtime
            self.best_setting = setting
        simulations = self.simulations + (1 if fresh else 0)
        self.entries.append(
            TraceEntry(
                iteration=len(self.entries) + 1,
                source=source,
                setting=setting,
                runtime=runtime,
                best_runtime=self.best_runtime,
                speedup_vs_o3=(
                    None if self.o3_runtime is None else self.o3_runtime / runtime
                ),
                fresh=fresh,
                simulations=simulations,
            )
        )

    def set_final(self, setting: FlagSetting, runtime: float) -> None:
        """Pin the result the strategy converged on (overrides the floor)."""
        self._final = (setting, runtime)

    @property
    def evaluations(self) -> int:
        return len(self.entries)

    @property
    def simulations(self) -> int:
        """Fresh simulations consumed so far (cache misses only)."""
        return self.entries[-1].simulations if self.entries else 0

    @property
    def trajectory(self) -> list[float]:
        """Best runtime seen after each evaluation (monotone non-increasing)."""
        return [entry.best_runtime for entry in self.entries]

    def evaluations_to_reach(self, target_runtime: float) -> int | None:
        """First 1-based evaluation index whose best-so-far reaches the
        target, or ``None`` iff it is never reached (see the module-level
        contract pinned on
        :func:`repro.search.evaluator.evaluations_to_reach`)."""
        for entry in self.entries:
            if entry.best_runtime <= target_runtime:
                return entry.iteration
        return None

    def simulations_to_reach(self, target_runtime: float) -> int | None:
        """Fresh simulations consumed when the target is first reached."""
        for entry in self.entries:
            if entry.best_runtime <= target_runtime:
                return entry.simulations
        return None

    def result(self) -> SearchResult:
        """The legacy-shaped :class:`SearchResult` of this run."""
        if self._final is not None:
            best_setting, best_runtime = self._final
        else:
            best_setting, best_runtime = self.best_setting, self.best_runtime
        return SearchResult(
            best_setting=best_setting,
            best_runtime=best_runtime,
            evaluations=self.evaluations,
            trajectory=self.trajectory,
        )


@dataclass
class SearchContext:
    """Everything a strategy may consult besides the scorer.

    ``rng`` is the *only* randomness a strategy is allowed: seeding it
    is what makes every strategy deterministic, and the tournament's
    byte-identity regression test relies on that.  ``distribution`` is
    the fitted model's predictive distribution for the pair under
    search — required by the model-guided strategies, absent for the
    pure-iterative baselines.
    """

    space: FlagSpace = field(default_factory=lambda: DEFAULT_SPACE)
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    distribution: IIDDistribution | None = None
    o3_runtime: float | None = None

    def require_distribution(self, strategy_name: str) -> IIDDistribution:
        if self.distribution is None:
            raise ValueError(
                f"strategy {strategy_name!r} is model-guided and needs a "
                "fitted IIDDistribution in the search context"
            )
        return self.distribution


@runtime_checkable
class SearchStrategy(Protocol):
    """A search algorithm: propose candidates, let the scorer price them.

    Implementations are plain classes with two attributes and one
    method; they never touch the evaluator directly, so the scorer's
    budget accounting sees every candidate.
    """

    #: Registry/leaderboard name.
    name: str
    #: True when the strategy ignores ``context.rng`` (one run covers
    #: every seed — the tournament dedupes on this).
    deterministic: bool

    def run(self, scorer: "BatchScorer", context: SearchContext) -> None:
        """Search until done or until the scorer is exhausted."""
        ...  # pragma: no cover - protocol


def run_traced(
    strategy: SearchStrategy,
    evaluator: Evaluator,
    budget: SearchBudget | int | None,
    seed: int = 0,
    space: FlagSpace = DEFAULT_SPACE,
    distribution: IIDDistribution | None = None,
    o3_runtime: float | None = None,
) -> SearchTrace:
    """Run one strategy under a scorer-enforced budget; return the trace."""
    from repro.autotune.scorer import BatchScorer

    if not isinstance(budget, SearchBudget):
        budget = SearchBudget(budget)
    trace = SearchTrace(o3_runtime=o3_runtime)
    scorer = BatchScorer(evaluator, budget, trace)
    context = SearchContext(
        space=space,
        rng=random.Random(seed),
        distribution=distribution,
        o3_runtime=o3_runtime,
    )
    strategy.run(scorer, context)
    return trace


def run_strategy(
    strategy: SearchStrategy,
    evaluator: Evaluator,
    budget: SearchBudget | int | None,
    seed: int = 0,
    space: FlagSpace = DEFAULT_SPACE,
    distribution: IIDDistribution | None = None,
    o3_runtime: float | None = None,
) -> SearchResult:
    """Like :func:`run_traced`, folded to the legacy :class:`SearchResult`."""
    return run_traced(
        strategy,
        evaluator,
        budget,
        seed=seed,
        space=space,
        distribution=distribution,
        o3_runtime=o3_runtime,
    ).result()
