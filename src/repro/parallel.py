"""Executor strategies for embarrassingly parallel batches.

Compile-and-simulate of independent (program, setting, machine) triples
has no shared state, so a batch can run serially, on a thread pool, or on
a process pool.  Everything here guarantees *order preservation and
result equality*: whichever strategy runs, item ``i`` of the output is
the result of item ``i`` of the input, computed by the same deterministic
function — so parallel output is bit-identical to serial output.

Process workers must be able to pickle the work function and its items;
callers pass a module-level function for that reason.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Recognised executor strategies.
EXECUTORS = ("auto", "serial", "thread", "process")

#: The lease-coordinated distributed strategy of :mod:`repro.cluster`.
#: Not a batch strategy: a cluster run claims units through the shared
#: lease table instead of fanning a fixed batch over a pool, so only the
#: store runner and protocol pipeline accept it — the plain batch
#: helpers below do not.
CLUSTER = "cluster"

#: Executor names the runner/pipeline layers accept.
RUNNER_EXECUTORS = EXECUTORS + (CLUSTER,)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` knob: None/0 → 1, negative → all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return int(jobs)


def resolve_strategy(
    jobs: int | None, executor: str, n_items: int | None = None
) -> tuple[int, str]:
    """Validate an executor name and resolve the effective strategy.

    The single home of the ``auto`` policy (process when more than one
    worker, else serial) and of the worker-count clamp, shared by
    :func:`run_batch`, :func:`run_batch_completed`, and the store runner.
    Returns ``(workers, executor)`` with ``executor`` never ``"auto"``.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    workers = resolve_jobs(jobs)
    if n_items is not None:
        workers = min(workers, max(n_items, 1))
    if executor == "auto":
        executor = "process" if workers > 1 else "serial"
    return workers, executor


def run_batch(
    function: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    jobs: int | None = 1,
    executor: str = "auto",
) -> list[R]:
    """Apply ``function`` to every item, preserving order.

    Args:
        function: deterministic per-item work; must be picklable (a
            module-level function) for the process strategy.
        items: the work items.
        jobs: worker count; 1 (or None/0) forces serial, negative uses
            every core.
        executor: ``serial``, ``thread``, ``process``, or ``auto``
            (process when ``jobs > 1``, else serial).
    """
    items = list(items)
    workers, executor = resolve_strategy(jobs, executor, len(items))
    if executor == "serial" or workers <= 1:
        return [function(item) for item in items]
    pool_type = (
        ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    )
    with pool_type(max_workers=workers) as pool:
        return list(pool.map(function, items))


def run_batch_completed(
    function: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    jobs: int | None = 1,
    executor: str = "auto",
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> Iterator[tuple[int, R]]:
    """Apply ``function`` to every item, yielding ``(index, result)`` pairs
    as each one finishes.

    Unlike :func:`run_batch`, results arrive in *completion* order, so a
    caller that checkpoints each result (e.g. the experiment-store
    runner) never holds more than the in-flight items un-persisted.  The
    item/function contract is the same as :func:`run_batch`; item ``i``'s
    result is always paired with index ``i``, whatever order it arrives.

    ``initializer(*initargs)`` runs once per pool worker before any item,
    the standard way to ship one large shared payload (e.g. a training
    matrix) to process workers instead of pickling it into every item.
    It is called once inline for the serial path, so worker-state set-up
    behaves identically across strategies.
    """
    items = list(items)
    workers, executor = resolve_strategy(jobs, executor, len(items))
    if executor == "serial" or workers <= 1:
        if initializer is not None:
            initializer(*initargs)
        for index, item in enumerate(items):
            yield index, function(item)
        return
    pool_type = (
        ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    )
    pool = pool_type(
        max_workers=workers, initializer=initializer, initargs=initargs
    )
    try:
        futures = {
            pool.submit(function, item): index
            for index, item in enumerate(items)
        }
        for future in as_completed(futures):
            yield futures[future], future.result()
    finally:
        # On failure (or the consumer closing the generator) drop every
        # not-yet-started item instead of computing results nobody will
        # consume; only genuinely in-flight work is waited for.
        pool.shutdown(wait=True, cancel_futures=True)
