"""Executor strategies for embarrassingly parallel batches.

Compile-and-simulate of independent (program, setting, machine) triples
has no shared state, so a batch can run serially, on a thread pool, or on
a process pool.  Everything here guarantees *order preservation and
result equality*: whichever strategy runs, item ``i`` of the output is
the result of item ``i`` of the input, computed by the same deterministic
function — so parallel output is bit-identical to serial output.

Process workers must be able to pickle the work function and its items;
callers pass a module-level function for that reason.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Recognised executor strategies.
EXECUTORS = ("auto", "serial", "thread", "process")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` knob: None/0 → 1, negative → all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return int(jobs)


def run_batch(
    function: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    jobs: int | None = 1,
    executor: str = "auto",
) -> list[R]:
    """Apply ``function`` to every item, preserving order.

    Args:
        function: deterministic per-item work; must be picklable (a
            module-level function) for the process strategy.
        items: the work items.
        jobs: worker count; 1 (or None/0) forces serial, negative uses
            every core.
        executor: ``serial``, ``thread``, ``process``, or ``auto``
            (process when ``jobs > 1``, else serial).
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    items = list(items)
    workers = min(resolve_jobs(jobs), max(len(items), 1))
    if executor == "auto":
        executor = "process" if workers > 1 else "serial"
    if executor == "serial" or workers <= 1:
        return [function(item) for item in items]
    pool_type = (
        ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    )
    with pool_type(max_workers=workers) as pool:
        return list(pool.map(function, items))
