"""Table 1: the 11 performance counters of a single -O3 profiling run."""

from repro.experiments import table1

from conftest import emit


def test_table1(benchmark, data):
    result = benchmark.pedantic(table1, args=(data,), rounds=1, iterations=1)
    assert len(result.counters) == 11
    emit(result)
