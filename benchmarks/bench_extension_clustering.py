"""§9 extension: training-set reduction by k-medoids clustering.

The paper's future work proposes clustering to "dramatically reduce the
amount of training data needed"; this bench measures the model-quality
cost of training on medoid pairs only.
"""

from repro.core.clustering import reduce_training_set, training_cost
from repro.core.crossval import leave_one_out
from repro.core.predictor import OptimisationPredictor


def test_clustered_training_reduction(benchmark, data):
    full_cost = training_cost(data.training)
    pair_count = len(data.training.program_names) * len(data.training.machines)

    def run():
        rows = []
        for k in (max(pair_count // 8, 2), max(pair_count // 3, 3)):
            reduced = reduce_training_set(data.training, k=k)
            predictor = OptimisationPredictor(extended=data.scale.extended).fit(
                reduced
            )
            result = leave_one_out(
                data.training,
                data.programs,
                compiler=data.compiler,
                predictor=predictor,
            )
            rows.append(
                (
                    k,
                    training_cost(reduced) / full_cost,
                    result.mean_speedup(),
                    result.fraction_of_best(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Extension: k-medoids training reduction (§9 future work)")
    print(f"{'medoids':>8s} {'train cost':>11s} {'mean speedup':>13s} "
          f"{'frac of best':>13s}")
    for k, cost, speedup, fraction in rows:
        print(f"{k:8d} {cost:11.1%} {speedup:13.3f} {fraction:13.2%}")
    assert rows[-1][2] > 1.0
