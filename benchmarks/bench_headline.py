"""The paper's headline claims (abstract/§5.5/§4.4)."""

from repro.experiments import headline

from conftest import emit


def test_headline(benchmark, data):
    result = benchmark.pedantic(headline, args=(data,), rounds=1, iterations=1)
    assert result.mean_model_speedup > 1.0
    assert 0.3 < result.fraction_of_best <= 1.2
    assert result.correlation > 0.7
    assert result.worst_setting_mean < 1.0
    emit(result)
