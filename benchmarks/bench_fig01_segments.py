"""Figure 1: best passes for three programs on three microarchitectures."""

from repro.experiments import figure1

from conftest import emit


def test_figure1(benchmark, data):
    result = benchmark.pedantic(figure1, args=(data,), rounds=1, iterations=1)
    assert result.segments
    emit(result)
