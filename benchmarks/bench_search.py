"""The autotuning tournament as a benchmark: §5.3 search economics.

Times one full strategy tournament on the tiny scale and records the
leaderboard (mean simulations-to-match per strategy) alongside the
wall-clock — the artifact that catches both a performance regression in
the batched scorer and a *quality* regression in the model-guided
strategies.

Two modes:

* ``pytest benchmarks/bench_search.py --benchmark-only`` — the
  interactive pytest-benchmark suite;
* ``PYTHONPATH=src python benchmarks/bench_search.py [--smoke]
  [--out BENCH_search.json]`` — emits the machine-readable artifact
  that CI uploads; ``--smoke`` additionally enforces the gate that
  model-seeded search matches best-known in strictly fewer simulations
  than uniform random.
"""

from repro.api import Session
from repro.autotune.tournament import check_model_beats_random

#: The gate grid, shared with ``repro-experiments tournament --smoke``
#: (see ``repro.cli.SMOKE_TOURNAMENT``): kept in lock-step by
#: ``tests/test_cli.py``.
SMOKE_GRID = {
    "programs": ["sha", "crc"],
    "machines": 2,
    "budget": 40,
    "seeds": tuple(range(15)),
    "tolerance": 0.01,
}


def _run_tournament(session=None, **overrides):
    session = session if session is not None else Session("tiny")
    grid = {**SMOKE_GRID, **overrides}
    return session.eval.tournament(
        programs=grid["programs"],
        machines=grid["machines"],
        budget=grid["budget"],
        seeds=grid["seeds"],
        tolerance=grid["tolerance"],
    )


def test_tournament_smoke_grid(benchmark):
    """One full tournament on the gate grid (model fit amortised)."""
    session = Session("tiny")
    session.models.fit()
    result = benchmark.pedantic(
        _run_tournament, kwargs={"session": session}, rounds=1, iterations=1
    )
    ok, message = check_model_beats_random(result)
    assert ok, message


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    """Run the tournament and write ``BENCH_search.json``."""
    import time

    from perfjson import emit

    started = time.time()
    result = _run_tournament()
    elapsed = time.time() - started
    ok, message = check_model_beats_random(result)
    payload = {
        "benchmark": "search",
        "smoke": smoke,
        "scale": "tiny",
        "budget": result.budget,
        "tolerance": result.tolerance,
        "programs": list(result.programs),
        "machines": list(result.machines),
        "seeds": len(result.seeds),
        "runs": len(result.runs),
        "wall_seconds": elapsed,
        "runs_per_sec": len(result.runs) / elapsed,
        "gate": message,
        "standings": [standing.payload() for standing in result.standings],
    }
    emit(out, payload)
    if smoke and not ok:
        raise SystemExit(f"smoke gate failed: {message}")
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_search.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fail unless model-seeded search out-economises random",
    )
    arguments = parser.parse_args()
    emit_artifact(arguments.out, arguments.smoke)
