"""Figure 3: the 39-dimension optimisation space cardinalities."""

from repro.experiments import figure3

from conftest import emit


def test_figure3(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    assert result.dimensions == 39
    emit(result)
