"""Ablation: the paper's factorised IID mode vs a dependence-aware vote."""

from repro.experiments.ablations import iid_vs_joint

from conftest import emit


def test_iid_vs_joint(benchmark, data):
    result = benchmark.pedantic(iid_vs_joint, args=(data,), rounds=1, iterations=1)
    assert len(result.rows) == 2
    emit(result)
