"""Shared fixtures for the reproduction benches.

Every bench uses the same (disk-cached) dataset at the scale chosen by
``REPRO_BENCH_SCALE`` (default ``quick``; use ``default`` for all 35
programs or ``paper`` for the full §4 protocol).  Results print with
``pytest benchmarks/ --benchmark-only -s``.
"""

import os

import pytest

from repro.experiments import load_or_build, preset


def bench_scale():
    return preset(os.environ.get("REPRO_BENCH_SCALE", "quick"))


@pytest.fixture(scope="session")
def data():
    scale = bench_scale()
    return load_or_build(scale)


@pytest.fixture(scope="session")
def extended_data():
    scale = bench_scale().with_extended()
    return load_or_build(scale)


def emit(result) -> None:
    """Print a rendered experiment result beneath the bench output."""
    print()
    print(result.render())
