"""Figure 9: MI(feature; best optimisation value).

Paper shape: i_size is the most informative descriptor, driving the
inlining/unrolling decisions; IPC and the cache-behaviour counters carry
most of the counter-side information.
"""

from repro.experiments import figure9

from conftest import emit


def test_figure9(benchmark, data):
    result = benchmark.pedantic(figure9, args=(data,), rounds=1, iterations=1)
    assert result.matrix.max() > 0.0
    emit(result)
    print("top cells:", result.top_cells(8))
