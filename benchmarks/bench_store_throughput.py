"""Micro-benchmarks: experiment-store shard I/O and the shard hot path.

These are the per-unit costs that determine dataset-build wall-clock:
writing/reading one checkpointed shard, the compile-once/simulate-many
shard computation, and (as a contrast) the naive compile-per-simulation
loop it replaces.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import itertools

from repro.compiler.flags import DEFAULT_SPACE
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArchSpace
from repro.programs import mibench_program
from repro.sim import simulate_analytic
from repro.store import ExperimentStore, GridSpec, ShardKey, compute_shard

#: One representative shard: a small program across an 8-machine chunk.
N_MACHINES = 8
N_SETTINGS = 12


def _grid() -> GridSpec:
    return GridSpec(
        program_names=("search",),
        machines=tuple(MicroArchSpace().sample(N_MACHINES, seed=42)),
        settings=tuple(DEFAULT_SPACE.sample_many(N_SETTINGS, seed=7)),
        chunk_machines=N_MACHINES,
    )


def _shard_arrays(grid: GridSpec):
    return compute_shard(
        mibench_program("search"), list(grid.machines), list(grid.settings)
    )


def test_shard_write(benchmark, tmp_path):
    """One checkpoint: atomic npz + fingerprinted sidecar."""
    grid = _grid()
    arrays = _shard_arrays(grid)
    key = ShardKey(0, 0)
    counter = itertools.count()

    def fresh_store():
        # Shards are append-only, so each round writes into a new store.
        return (ExperimentStore(grid, root=tmp_path / f"s{next(counter)}"),), {}

    benchmark.pedantic(
        lambda store: store.write_shard(key, arrays),
        setup=fresh_store,
        rounds=30,
    )


def test_shard_read_verified(benchmark, tmp_path):
    """One digest-verified shard load (the resume/assemble path)."""
    grid = _grid()
    store = ExperimentStore(grid, root=tmp_path / "store")
    key = ShardKey(0, 0)
    store.write_shard(key, _shard_arrays(grid))
    result = benchmark(store.read_shard, key)
    assert result[0].shape == (N_SETTINGS, N_MACHINES)


def test_compute_shard_compile_once(benchmark):
    """The hot path: each binary compiled once, simulated on every machine."""
    grid = _grid()
    program = mibench_program("search")
    machines, settings = list(grid.machines), list(grid.settings)
    result = benchmark(
        lambda: compute_shard(program, machines, settings, Compiler(cache=False))
    )
    assert result[0].shape == (N_SETTINGS, N_MACHINES)


def test_compute_shard_naive_recompile(benchmark):
    """Contrast: recompiling per (setting, machine) — what sharding avoids."""
    grid = _grid()
    program = mibench_program("search")
    machines, settings = list(grid.machines), list(grid.settings)

    def naive():
        compiler = Compiler(cache=False)
        for setting in settings:
            for machine in machines:
                simulate_analytic(compiler.compile(program, setting), machine)

    benchmark(naive)
