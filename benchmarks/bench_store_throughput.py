"""Micro-benchmarks: experiment-store shard I/O and the shard hot path.

These are the per-unit costs that determine dataset-build wall-clock:
writing/reading one checkpointed shard, the compile-once/simulate-many
shard computation, and (as a contrast) the naive compile-per-simulation
loop it replaces.  Run with ``pytest benchmarks/ --benchmark-only``.

``PYTHONPATH=src python benchmarks/bench_store_throughput.py [--smoke]
[--out BENCH_shard.json]`` emits the machine-readable ``BENCH_shard.json``
artifact: the simulate phase of :func:`~repro.store.compute.compute_shard`
timed scalar vs vectorised at paper-scale machine counts (compilation is
warmed out through the memoising compiler so the contrast isolates the
phase the vector kernel accelerates).
"""

import itertools

from repro.compiler.flags import DEFAULT_SPACE
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArchSpace
from repro.programs import mibench_program
from repro.sim import simulate_analytic
from repro.store import ExperimentStore, GridSpec, ShardKey, compute_shard

#: One representative shard: a small program across an 8-machine chunk.
N_MACHINES = 8
N_SETTINGS = 12


def _grid() -> GridSpec:
    return GridSpec(
        program_names=("search",),
        machines=tuple(MicroArchSpace().sample(N_MACHINES, seed=42)),
        settings=tuple(DEFAULT_SPACE.sample_many(N_SETTINGS, seed=7)),
        chunk_machines=N_MACHINES,
    )


def _shard_arrays(grid: GridSpec):
    return compute_shard(
        mibench_program("search"), list(grid.machines), list(grid.settings)
    )


def test_shard_write(benchmark, tmp_path):
    """One checkpoint: atomic npz + fingerprinted sidecar."""
    grid = _grid()
    arrays = _shard_arrays(grid)
    key = ShardKey(0, 0)
    counter = itertools.count()

    def fresh_store():
        # Shards are append-only, so each round writes into a new store.
        return (ExperimentStore(grid, root=tmp_path / f"s{next(counter)}"),), {}

    benchmark.pedantic(
        lambda store: store.write_shard(key, arrays),
        setup=fresh_store,
        rounds=30,
    )


def test_shard_read_verified(benchmark, tmp_path):
    """One digest-verified shard load (the resume/assemble path)."""
    grid = _grid()
    store = ExperimentStore(grid, root=tmp_path / "store")
    key = ShardKey(0, 0)
    store.write_shard(key, _shard_arrays(grid))
    result = benchmark(store.read_shard, key)
    assert result[0].shape == (N_SETTINGS, N_MACHINES)


def test_compute_shard_compile_once(benchmark):
    """The hot path: each binary compiled once, simulated on every machine."""
    grid = _grid()
    program = mibench_program("search")
    machines, settings = list(grid.machines), list(grid.settings)
    result = benchmark(
        lambda: compute_shard(program, machines, settings, Compiler(cache=False))
    )
    assert result[0].shape == (N_SETTINGS, N_MACHINES)


def test_compute_shard_naive_recompile(benchmark):
    """Contrast: recompiling per (setting, machine) — what sharding avoids."""
    grid = _grid()
    program = mibench_program("search")
    machines, settings = list(grid.machines), list(grid.settings)

    def naive():
        compiler = Compiler(cache=False)
        for setting in settings:
            for machine in machines:
                simulate_analytic(compiler.compile(program, setting), machine)

    benchmark(naive)


def test_compute_shard_vectorised(benchmark):
    """The vector path: the whole shard in one simulate-many pass."""
    grid = _grid()
    program = mibench_program("search")
    machines, settings = list(grid.machines), list(grid.settings)
    compiler = Compiler()  # memoised: the bench isolates the simulate phase
    compute_shard(program, machines, settings, compiler)
    result = benchmark(
        lambda: compute_shard(program, machines, settings, compiler)
    )
    assert result[0].shape == (N_SETTINGS, N_MACHINES)


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    """Time ``compute_shard``'s simulate phase scalar vs vectorised.

    Machines stay at paper scale (the §4.2 sample is 200) in both modes —
    that is the axis the acceptance bar is defined on; smoke mode trims
    the setting axis to keep CI wall-clock down.  A shared memoising
    compiler is warmed first so both timed paths measure simulation, not
    compilation.
    """
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    import numpy as np
    from perfjson import emit, measure, throughput

    n_settings, n_machines = (4, 200) if smoke else (12, 200)
    program = mibench_program("search")
    machines = MicroArchSpace(extended=True).sample(n_machines, seed=42)
    settings = list(DEFAULT_SPACE.sample_many(n_settings, seed=7))
    compiler = Compiler()
    compute_shard(program, machines, settings, compiler)  # warm the memo
    pairs = (n_settings + 1) * n_machines  # settings plus the -O3 baseline

    scalar_timing = throughput(
        measure(
            lambda: compute_shard(
                program, machines, settings, compiler, vectorize=False
            ),
            rounds=3,
        ),
        pairs,
    )
    vector_timing = throughput(
        measure(
            lambda: compute_shard(
                program, machines, settings, compiler, vectorize=True
            ),
            rounds=3,
        ),
        pairs,
    )

    scalar_arrays = compute_shard(
        program, machines, settings, compiler, vectorize=False
    )
    vector_arrays = compute_shard(
        program, machines, settings, compiler, vectorize=True
    )
    if not all(
        np.array_equal(got, want)
        for got, want in zip(vector_arrays, scalar_arrays)
    ):
        raise SystemExit("vectorised compute_shard drifted from the scalar path")

    payload = {
        "benchmark": "shard_simulate_phase",
        "smoke": smoke,
        "settings": n_settings,
        "machines": n_machines,
        "scalar": scalar_timing,
        "vector": vector_timing,
        "speedup": scalar_timing["best_seconds"] / vector_timing["best_seconds"],
        "exact_match": True,
    }
    emit(out, payload)
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the simulate-phase speedup lands below this",
    )
    args = parser.parse_args()
    result = emit_artifact(args.out, args.smoke)
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"speedup {result['speedup']:.1f}x below floor {args.min_speedup}x"
        )
