"""Figure 8: MI(optimisation; speedup) per program.

Paper shape: scheduling matters almost everywhere; unrolling matters for
search; the inlining family dominates for ispell/pgp/pgp_sa/say.
"""

from repro.experiments import figure8

from conftest import emit


def test_figure8(benchmark, data):
    result = benchmark.pedantic(figure8, args=(data,), rounds=1, iterations=1)
    assert result.matrix.max() > 0.0
    emit(result)
    print("top cells:", result.top_cells(8))
