"""Figure 4: distribution of the maximum speedup per program.

Paper shape: overall average ~1.23x; qsort/basicmath flat; rijndael_e and
search at the top with peaks up to ~4.8x on single machines.
"""

from repro.experiments import figure4

from conftest import emit


def test_figure4(benchmark, data):
    result = benchmark.pedantic(figure4, args=(data,), rounds=1, iterations=1)
    assert result.overall_mean > 1.05
    assert result.maximum.max() > 1.5
    emit(result)
