"""Figure 5: best vs model-predicted speedup over the joint space.

Paper shape: the two surfaces are nearly identical (correlation 0.93).
"""

from repro.experiments import figure5

from conftest import emit


def test_figure5(benchmark, data):
    result = benchmark.pedantic(figure5, args=(data,), rounds=1, iterations=1)
    assert result.correlation > 0.7
    emit(result)
