"""Figure 7: per-microarchitecture model vs best speedup.

Paper shape: model between 1.08x and 1.35x, tracking the Best line; the
right (small-I-cache) end has the largest headroom.
"""

from repro.experiments import figure7

from conftest import emit


def test_figure7(benchmark, data):
    result = benchmark.pedantic(figure7, args=(data,), rounds=1, iterations=1)
    regions = result.regions()
    assert regions["high-headroom"][1] >= regions["low-headroom"][1]
    emit(result)
