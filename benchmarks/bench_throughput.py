"""Micro-benchmarks: compiler and simulator throughput.

These are the per-unit costs that determine experiment wall-clock: one
compilation (clone + 20 passes + finalise) and one analytic simulation —
plus the scalar-vs-vector contrast that motivates the simulate-many
kernel.

Two modes:

* ``pytest benchmarks/bench_throughput.py --benchmark-only`` — the
  interactive pytest-benchmark suite;
* ``PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]
  [--out BENCH_simulate.json]`` — emits the machine-readable
  ``BENCH_simulate.json`` artifact (scalar vs vector pairs/sec and the
  speedup) that CI uploads and the README's performance table cites.
"""

from repro.compiler import Compiler, o3_setting
from repro.compiler.flags import DEFAULT_SPACE
from repro.machine import xscale
from repro.machine.params import MicroArchSpace
from repro.programs import mibench_program
from repro.sim import simulate_analytic
from repro.sim.vector import BinarySignature, MachineMatrix, simulate_many


def test_compile_throughput(benchmark):
    program = mibench_program("madplay")
    compiler = Compiler(cache=False)
    setting = o3_setting()
    benchmark(compiler.compile, program, setting)


def test_compile_small_program(benchmark):
    program = mibench_program("search")
    compiler = Compiler(cache=False)
    setting = o3_setting()
    benchmark(compiler.compile, program, setting)


def test_simulate_throughput(benchmark):
    program = mibench_program("madplay")
    binary = Compiler().compile(program, o3_setting())
    machine = xscale()
    result = benchmark(simulate_analytic, binary, machine)
    assert result.cycles > 0


def test_program_generation(benchmark):
    from repro.programs import mibench_spec
    from repro.programs.generator import build_program

    spec = mibench_spec("madplay")
    program = benchmark(build_program, spec)
    assert program.size_insns > 0


def _simulate_grid_inputs(n_settings: int, n_machines: int):
    """S compiled binaries (o3 + settings) and M sampled machines."""
    compiler = Compiler()
    program = mibench_program("madplay")
    settings = [o3_setting()] + DEFAULT_SPACE.sample_many(n_settings - 1, seed=7)
    binaries = [compiler.compile(program, setting) for setting in settings]
    machines = MicroArchSpace(extended=True).sample(n_machines, seed=42)
    return binaries, machines


def test_simulate_many_throughput(benchmark):
    """The vector kernel over an (8 × 64) grid, signatures prebuilt."""
    binaries, machines = _simulate_grid_inputs(8, 64)
    signatures = [BinarySignature.from_binary(b) for b in binaries]
    matrix = MachineMatrix.from_machines(machines)
    results = benchmark(simulate_many, signatures, matrix)
    assert results.shape == (8, 64)


def test_simulate_scalar_grid(benchmark):
    """Contrast: the same (8 × 64) grid through S×M scalar calls."""
    binaries, machines = _simulate_grid_inputs(8, 64)

    def scalar():
        return [
            simulate_analytic(binary, machine).seconds
            for binary in binaries
            for machine in machines
        ]

    assert len(benchmark(scalar)) == 8 * 64


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    """Time scalar vs vector over one grid and write ``BENCH_simulate.json``.

    Smoke mode shrinks the setting axis (CI time) but keeps the machine
    axis at paper scale — the axis the kernel amortises over.
    """
    from perfjson import emit, measure, throughput

    n_settings, n_machines = (4, 200) if smoke else (13, 400)
    binaries, machines = _simulate_grid_inputs(n_settings, n_machines)
    pairs = n_settings * n_machines

    def scalar():
        for binary in binaries:
            for machine in machines:
                simulate_analytic(binary, machine)

    def vector():
        simulate_many(
            [BinarySignature.from_binary(b) for b in binaries],
            MachineMatrix.from_machines(machines),
        )

    scalar_timing = throughput(measure(scalar, rounds=3), pairs)
    vector_timing = throughput(measure(vector, rounds=3), pairs)

    # The artifact also certifies equivalence: a speedup from a kernel
    # that drifted from the reference would be worthless.
    import numpy as np

    reference = np.array(
        [
            [simulate_analytic(b, m).seconds for m in machines]
            for b in binaries
        ]
    )
    vectored = simulate_many(
        [BinarySignature.from_binary(b) for b in binaries],
        MachineMatrix.from_machines(machines),
    ).seconds
    if not np.array_equal(reference, vectored):
        raise SystemExit("vector kernel drifted from the scalar reference")

    payload = {
        "benchmark": "simulate",
        "smoke": smoke,
        "settings": n_settings,
        "machines": n_machines,
        "scalar": scalar_timing,
        "vector": vector_timing,
        "speedup": scalar_timing["best_seconds"] / vector_timing["best_seconds"],
        "exact_match": True,
    }
    emit(out, payload)
    return payload


if __name__ == "__main__":
    import argparse
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_simulate.json")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the vector/scalar speedup lands below this",
    )
    args = parser.parse_args()
    result = emit_artifact(args.out, args.smoke)
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"speedup {result['speedup']:.1f}x below floor {args.min_speedup}x"
        )
