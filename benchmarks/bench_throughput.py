"""Micro-benchmarks: compiler and simulator throughput.

These are the per-unit costs that determine experiment wall-clock: one
compilation (clone + 20 passes + finalise) and one analytic simulation.
"""

from repro.compiler import Compiler, o3_setting
from repro.machine import xscale
from repro.programs import mibench_program
from repro.sim import simulate_analytic


def test_compile_throughput(benchmark):
    program = mibench_program("madplay")
    compiler = Compiler(cache=False)
    setting = o3_setting()
    benchmark(compiler.compile, program, setting)


def test_compile_small_program(benchmark):
    program = mibench_program("search")
    compiler = Compiler(cache=False)
    setting = o3_setting()
    benchmark(compiler.compile, program, setting)


def test_simulate_throughput(benchmark):
    program = mibench_program("madplay")
    binary = Compiler().compile(program, o3_setting())
    machine = xscale()
    result = benchmark(simulate_analytic, binary, machine)
    assert result.cycles > 0


def test_program_generation(benchmark):
    from repro.programs import mibench_spec
    from repro.programs.generator import build_program

    spec = mibench_spec("madplay")
    program = benchmark(build_program, spec)
    assert program.size_insns > 0
