"""§5.3: random-search evaluations needed to match the model (paper: ~50)."""

from repro.experiments import iterations_to_match

from conftest import emit


def test_iterations_to_match(benchmark, data):
    result = benchmark.pedantic(
        iterations_to_match, args=(data,), rounds=1, iterations=1
    )
    assert result.overall_mean >= 1.0
    emit(result)
