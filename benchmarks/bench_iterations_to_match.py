"""§5.3: random-search evaluations needed to match the model (paper: ~50)."""

from repro.api import Session
from repro.experiments import iterations_to_match

from conftest import emit


def test_iterations_to_match(benchmark, data):
    result = benchmark.pedantic(
        iterations_to_match, args=(data,), rounds=1, iterations=1
    )
    assert result.overall_mean >= 1.0
    emit(result)


def test_tournament_economics(benchmark, data):
    """The tournament's view of the same question: every strategy races
    on the bench scale's first two programs, and the leaderboard prints
    alongside the classic iterations-to-match number above."""
    session = Session(data.scale)

    def tournament():
        return session.eval.tournament(
            programs=[program.name for program in data.programs[:2]],
            machines=2,
            budget=30,
            seeds=(0, 1),
        )

    result = benchmark.pedantic(tournament, rounds=1, iterations=1)
    assert result.standings
    print()
    print(result.render())
