"""Ablation: the top-5% good-settings threshold (paper footnote 1)."""

from repro.experiments.ablations import quantile_sweep

from conftest import emit


def test_quantile_sweep(benchmark, data):
    result = benchmark.pedantic(quantile_sweep, args=(data,), rounds=1, iterations=1)
    assert len(result.rows) == 4
    emit(result)
