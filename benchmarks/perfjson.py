"""Machine-readable benchmark artifacts (the ``BENCH_*.json`` files).

The pytest-benchmark suites in this directory are for humans at a
terminal; CI and the README's performance table need numbers that
survive as files.  :func:`measure` times a callable the way a
micro-benchmark should (several rounds, best round wins, warmup first)
and :func:`emit` writes the artifact with enough context (grid shape,
mode, python/numpy versions) to compare runs across PRs.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path


def measure(fn, *, rounds: int = 5, warmup: int = 1) -> dict:
    """Best-of-``rounds`` wall time for one call of ``fn``.

    Warmup rounds populate caches (compiler memos, lru_caches, numpy
    internals) so the measured rounds see the steady state the hot path
    actually runs in.
    """
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return {
        "best_seconds": min(times),
        "mean_seconds": sum(times) / len(times),
        "rounds": rounds,
    }


def throughput(timing: dict, pairs: int) -> dict:
    """Attach pairs/sec rates to one :func:`measure` result."""
    return {
        **timing,
        "pairs": pairs,
        "pairs_per_sec": pairs / timing["best_seconds"],
    }


def emit(path: str | Path, payload: dict) -> Path:
    """Write one ``BENCH_*.json`` artifact (stamped with the platform)."""
    import numpy

    path = Path(path)
    payload = {
        **payload,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return path
