"""Figure 6: per-program model vs best speedup (paper: 1.16x vs 1.23x)."""

from repro.experiments import figure6

from conftest import emit


def test_figure6(benchmark, data):
    result = benchmark.pedantic(figure6, args=(data,), rounds=1, iterations=1)
    assert result.mean_model > 1.0
    assert result.mean_best >= result.mean_model - 0.05
    emit(result)
