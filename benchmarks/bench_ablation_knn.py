"""Ablation: KNN neighbourhood size (paper claims insensitivity near K=7)."""

from repro.experiments.ablations import knn_k_sweep

from conftest import emit


def test_knn_k_sweep(benchmark, data):
    result = benchmark.pedantic(
        knn_k_sweep, args=(data,), kwargs={"ks": (1, 3, 7, 15)}, rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 4
    emit(result)
