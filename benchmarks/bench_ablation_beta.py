"""Ablation: softmax sharpness beta in the KNN mixture (paper: beta = 1)."""

from repro.experiments import beta_sweep

from conftest import emit


def test_beta_sweep(benchmark, data):
    result = benchmark.pedantic(
        beta_sweep, args=(data,), kwargs={"betas": (0.25, 1.0, 16.0)},
        rounds=1, iterations=1,
    )
    assert len(result.rows) == 3
    emit(result)
