"""Figure 10: the §7 extended space (frequency x issue width).

Paper shape: best 1.24x vs 1.23x on the base space; model 1.14x vs 1.16x —
the approach transfers without modification.
"""

from repro.experiments import figure6, figure10

from conftest import emit


def test_figure10(benchmark, data, extended_data):
    def run():
        from repro.experiments.figures import Figure10Result

        return Figure10Result(base=figure6(data), extended=figure6(extended_data))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.extended.mean_model > 1.0
    assert abs(result.extended.mean_model - result.base.mean_model) < 0.25
    emit(result)
