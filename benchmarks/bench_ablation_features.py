"""Ablation: counters-only / descriptors-only / both feature sources."""

from repro.experiments.ablations import feature_mode_sweep

from conftest import emit


def test_feature_modes(benchmark, data):
    result = benchmark.pedantic(
        feature_mode_sweep, args=(data,), rounds=1, iterations=1
    )
    both = next(r for r in result.rows if r.label.startswith("both"))
    assert both.mean_speedup > 1.0
    emit(result)
