"""Cluster-tier benchmark: lease-based worker fleets vs a single worker.

PR 9's ``repro.cluster`` drains one shard store with N coordinator-free
worker processes claiming units through ``O_EXCL`` lease files.  This
harness measures the wall time for a fleet of real ``repro-experiments
worker`` subprocesses (the exact deployment code path, startup cost
included) to build one dataset at each worker count, certifies every
drain is **byte-identical** to a serial in-process build, and then runs
the failure drill: four workers with one ``kill -9``'d mid-build, gated
on byte-identity *and* on no unit being computed twice (the stale lease
is reclaimed; completed units are skipped on the post-claim re-check).

Two modes:

* ``PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
  [--out BENCH_cluster.json] [--min-speedup X]`` — emits the
  machine-readable ``BENCH_cluster.json`` artifact CI uploads;
  ``--min-speedup`` gates the 4-worker/1-worker wall-time ratio (CI
  passes 2.5; the ratio needs >= 4 cores to mean anything, so the
  artifact records ``cpu_count`` alongside it).
* The correctness gates (byte-identity, kill-one-worker convergence,
  no-double-count) always apply, whatever the core count.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import run_local_workers
from repro.experiments.config import PRESETS
from repro.experiments.dataset import experiment_store, grid_for_scale
from repro.programs.mibench import mibench_program
from repro.store import ExperimentRunner, ExperimentStore

#: Stale-lease horizon for the kill drill: short enough that survivors
#: reclaim the victim's unit within the bench, long enough that a slow
#: CI runner's live workers never look dead.
KILL_TTL = 5.0


def _scale(name: str):
    return PRESETS[name]


def _reference_fingerprint(scale) -> str:
    """Serial in-process ground truth every fleet drain must reproduce."""
    grid = grid_for_scale(scale)
    programs = [mibench_program(name) for name in scale.programs]
    with tempfile.TemporaryDirectory() as tmp:
        store = ExperimentStore(grid, root=Path(tmp) / "store")
        ExperimentRunner(store, programs=programs).run()
        return store.fingerprint()


def _worker_args(scale, cache: str) -> list[str]:
    return ["--scale", scale.name, "--cache-dir", cache, "--quiet"]


def _drain(scale, workers: int) -> tuple[float, str]:
    """One fleet drain into a fresh cache; (wall seconds, fingerprint)."""
    with tempfile.TemporaryDirectory() as cache:
        started = time.perf_counter()
        codes = run_local_workers(_worker_args(scale, cache), workers)
        elapsed = time.perf_counter() - started
        if any(codes):
            raise SystemExit(f"worker exited non-zero: {codes}")
        store = experiment_store(scale, cache)
        return elapsed, store.fingerprint()


def _timed_fleet(scale, workers: int, rounds: int, reference: str) -> dict:
    """Best-of-``rounds`` fleet wall time, byte-identity checked per round."""
    times = []
    for _ in range(rounds):
        elapsed, fingerprint = _drain(scale, workers)
        if fingerprint != reference:
            raise SystemExit(
                f"{workers}-worker drain drifted from the serial build: "
                f"{fingerprint} != {reference}"
            )
        times.append(elapsed)
    return {
        "workers": workers,
        "best_seconds": min(times),
        "mean_seconds": sum(times) / len(times),
        "rounds": rounds,
    }


def _kill_drill(scale, reference: str) -> dict:
    """Four workers, one ``kill -9``'d mid-build; survivors must converge.

    Gates, in order of importance:

    * the store completes and its fingerprint matches the serial build
      (the victim's in-flight partial write was never visible);
    * no unit is counted as computed by two workers — the sum of the
      per-worker progress counters never exceeds the shard count, i.e.
      reclaim re-simulates only the unit the victim was holding, never
      one it finished (the post-claim ``is_done`` re-check).
    """
    grid = grid_for_scale(scale)
    with tempfile.TemporaryDirectory() as cache:
        args = _worker_args(scale, cache) + ["--lease-ttl", str(KILL_TTL)]
        command = [sys.executable, "-m", "repro.cli", "worker", *args]
        procs = [subprocess.Popen(command) for _ in range(4)]
        victim = procs[0]

        # Kill the victim once the build is demonstrably mid-flight:
        # some shards done, some still pending.
        deadline = time.monotonic() + 300.0
        killed = False
        while time.monotonic() < deadline:
            try:
                store = experiment_store(scale, cache)
            except Exception:
                time.sleep(0.05)  # manifest not pinned yet
                continue
            done = len(store.completed_keys())
            if 0 < done < grid.n_shards and victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
                killed = victim.wait(timeout=30) is not None
                break
            if done >= grid.n_shards:
                break  # too fast to kill mid-run: the drill degrades
            time.sleep(0.02)

        codes = [proc.wait(timeout=600) for proc in procs[1:]]
        if any(codes):
            raise SystemExit(f"surviving worker exited non-zero: {codes}")

        store = experiment_store(scale, cache)
        if not store.is_complete():
            raise SystemExit("fleet did not converge after the kill")
        fingerprint = store.fingerprint()
        if fingerprint != reference:
            raise SystemExit(
                f"post-kill store drifted from the serial build: "
                f"{fingerprint} != {reference}"
            )

        counted = 0
        progress_dir = Path(store.root) / "cluster" / "progress"
        for path in sorted(progress_dir.glob("*.json")):
            counted += int(json.loads(path.read_text())["units"])
        # <= : a unit computed twice would push the sum past the shard
        # count.  (The sum can fall one short if the victim died between
        # its shard write and its progress write — the shard itself is
        # still there exactly once, as the fingerprint gate just proved.)
        if counted > grid.n_shards:
            raise SystemExit(
                f"double-counted units after reclaim: {counted} computed "
                f"for {grid.n_shards} shards"
            )
        return {
            "workers": 4,
            "scale": scale.name,
            "lease_ttl": KILL_TTL,
            "killed_mid_run": killed,
            "units_total": grid.n_shards,
            "units_counted": counted,
            "no_double_count": True,
            "byte_identical": True,
        }


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    sys.path.insert(0, str(Path(__file__).parent))
    from perfjson import emit

    import os

    # Fleet timing needs enough work per worker to amortise interpreter
    # startup (~1 s/worker), so it runs the 105-shard `default` grid;
    # the kill drill only needs a mid-flight window, so the 24-shard
    # `quick` grid keeps it cheap.
    scale_name, worker_counts, rounds = (
        ("default", (1, 4), 1) if smoke else ("default", (1, 2, 4), 2)
    )
    scale = _scale(scale_name)
    grid = grid_for_scale(scale)
    reference = _reference_fingerprint(scale)

    fleets = {
        str(workers): _timed_fleet(scale, workers, rounds, reference)
        for workers in worker_counts
    }
    kill_scale = _scale("quick")
    kill = _kill_drill(kill_scale, _reference_fingerprint(kill_scale))

    best_single = fleets["1"]["best_seconds"]
    best_four = fleets[str(max(worker_counts))]["best_seconds"]
    payload = {
        "benchmark": "cluster",
        "smoke": smoke,
        "scale": scale_name,
        "shards": grid.n_shards,
        "cpu_count": os.cpu_count(),
        "fleets": fleets,
        "speedup": best_single / best_four,
        "byte_identical": True,
        "kill_drill": kill,
    }
    emit(out, payload)
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_cluster.json")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the max-fleet/1-worker speedup lands below "
        "this (only meaningful with >= as many cores as workers)",
    )
    args = parser.parse_args()
    result = emit_artifact(args.out, args.smoke)
    print(
        f"cluster bench: {result['shards']} shards, "
        f"speedup {result['speedup']:.2f}x at "
        f"{max(int(k) for k in result['fleets'])} workers "
        f"({result['cpu_count']} cores), kill drill "
        f"{'killed mid-run' if result['kill_drill']['killed_mid_run'] else 'degraded (build too fast)'}"
    )
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"speedup {result['speedup']:.2f}x below floor {args.min_speedup}x"
        )
