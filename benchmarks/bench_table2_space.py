"""Table 2: the 288,000-point microarchitecture space."""

from repro.experiments import table2

from conftest import emit


def test_table2(benchmark):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    assert result.base_size == 288_000
    emit(result)
