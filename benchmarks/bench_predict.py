"""Micro-benchmarks: ranked-prediction throughput, scalar vs vector.

The deployment hot path (§3.4) is "profile once, rank the flag space from
memory": every ``/predict`` runs the KNN/softmax/mixture math plus the
best-first top-N enumeration.  This harness times whole batches of ranked
predictions through the scalar reference and the batched ranking kernel
(:mod:`repro.core.vector`) over the same fitted model and certifies the
two are byte-identical under canonical JSON before reporting a speedup.

Two modes:

* ``pytest benchmarks/bench_predict.py --benchmark-only`` — the
  interactive pytest-benchmark suite;
* ``PYTHONPATH=src python benchmarks/bench_predict.py [--smoke]
  [--out BENCH_predict.json] [--min-speedup X]`` — emits the
  machine-readable ``BENCH_predict.json`` artifact (ranked
  predictions/sec both ways, the speedup, and the equivalence verdict)
  that CI uploads and the README's performance table cites.
"""

from repro.api.facets import ranked_prediction, ranked_prediction_many
from repro.core.predictor import OptimisationPredictor
from repro.experiments.config import PRESETS
from repro.experiments.dataset import load_or_build
from repro.service.service import canonical_json
from repro.sim.counters import PerfCounters


def _fitted_models(scale_name: str):
    """One scalar and one vectorised predictor over the same training."""
    data = load_or_build(PRESETS[scale_name], use_disk_cache=False)
    training = data.training
    scalar = OptimisationPredictor(
        extended=training.extended, vectorize=False
    ).fit(training)
    vector = OptimisationPredictor(
        extended=training.extended, vectorize=True
    ).fit(training)
    return training, scalar, vector


def _query_batch(training, repeats: int, top: int):
    """The full training grid as ranked-prediction queries, replicated."""
    queries = []
    for _ in range(repeats):
        for p, name in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                queries.append(
                    {
                        "counters": PerfCounters(*training.counters[p, m, :]),
                        "machine": machine,
                        "top": top,
                        "program": name,
                    }
                )
    return queries


def test_rank_scalar(benchmark):
    training, scalar, _ = _fitted_models("tiny")
    queries = _query_batch(training, repeats=1, top=3)
    benchmark(lambda: [ranked_prediction(scalar, q["counters"], q["machine"],
                                         q["top"]) for q in queries])


def test_rank_vector(benchmark):
    training, _, vector = _fitted_models("tiny")
    queries = _query_batch(training, repeats=1, top=3)
    benchmark(lambda: ranked_prediction_many(vector, queries))


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    """Time scalar vs batched ranking and write ``BENCH_predict.json``.

    Smoke mode uses the tiny grid (36 training pairs); the full run uses
    the quick grid (120 pairs) with more replication — both report ranked
    predictions per second.
    """
    from perfjson import emit, measure, throughput

    scale_name, repeats, top = ("tiny", 8, 3) if smoke else ("quick", 10, 5)
    training, scalar, vector = _fitted_models(scale_name)
    queries = _query_batch(training, repeats, top)

    def scalar_rank():
        for query in queries:
            ranked_prediction(
                scalar,
                query["counters"],
                query["machine"],
                query["top"],
                program=query["program"],
            )

    def vector_rank():
        ranked_prediction_many(vector, queries)

    scalar_timing = throughput(measure(scalar_rank, rounds=3), len(queries))
    vector_timing = throughput(measure(vector_rank, rounds=3), len(queries))

    # The evalrun path ranks nothing — predict() only takes the mode — so
    # time it separately: this is where the KNN kernel dominates.
    counters_list = [query["counters"] for query in queries]
    machines = [query["machine"] for query in queries]

    def scalar_mode():
        for counters, machine in zip(counters_list, machines):
            scalar.predict(counters, machine)

    def vector_mode():
        vector.predict_many(counters_list, machines)

    mode_scalar_timing = throughput(
        measure(scalar_mode, rounds=3), len(queries)
    )
    mode_vector_timing = throughput(
        measure(vector_mode, rounds=3), len(queries)
    )

    # The artifact also certifies equivalence — byte-identity of the
    # ranked payloads under canonical JSON, the service's wire contract.
    reference = [
        canonical_json(
            ranked_prediction(
                scalar,
                query["counters"],
                query["machine"],
                query["top"],
                program=query["program"],
            ).payload()
        )
        for query in queries
    ]
    candidate = [
        canonical_json(prediction.payload())
        for prediction in ranked_prediction_many(vector, queries)
    ]
    if reference != candidate:
        raise SystemExit("ranking kernel drifted from the scalar reference")

    payload = {
        "benchmark": "predict",
        "smoke": smoke,
        "scale": scale_name,
        "queries": len(queries),
        "top": top,
        "scalar": scalar_timing,
        "vector": vector_timing,
        "speedup": scalar_timing["best_seconds"] / vector_timing["best_seconds"],
        "mode_scalar": mode_scalar_timing,
        "mode_vector": mode_vector_timing,
        "mode_speedup": (
            mode_scalar_timing["best_seconds"]
            / mode_vector_timing["best_seconds"]
        ),
        "exact_match": True,
    }
    emit(out, payload)
    return payload


if __name__ == "__main__":
    import argparse
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_predict.json")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the vector/scalar speedup lands below this",
    )
    args = parser.parse_args()
    result = emit_artifact(args.out, args.smoke)
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"speedup {result['speedup']:.1f}x below floor {args.min_speedup}x"
        )
