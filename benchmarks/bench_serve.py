"""Serving-tier benchmark: concurrent-client /predict throughput.

The deployed predictor answers many clients at once, and PR 8's serving
tier coalesces concurrent single ``/predict`` requests into one
ranking-kernel pass (:class:`~repro.service.service.PredictBatcher`).
This harness drives the same concurrent client load through two
:class:`~repro.service.PredictionService` instances over one promoted
model — micro-batching on vs off — certifies every batched response is
byte-identical to the unbatched answer for the same payload, and reports
the throughput ratio.

Two modes:

* ``pytest benchmarks/bench_serve.py --benchmark-only`` — the
  interactive pytest-benchmark suite;
* ``PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
  [--out BENCH_serve.json] [--min-speedup X]`` — emits the
  machine-readable ``BENCH_serve.json`` artifact (requests/sec both
  ways, the speedup, batch statistics, and the equivalence verdict)
  that CI uploads and the README's performance table cites.
"""

import dataclasses
import tempfile
import threading
import time

from repro.api import Session
from repro.experiments.config import PRESETS
from repro.experiments.dataset import load_or_build
from repro.service import PredictionService, canonical_json
from repro.sim.counters import COUNTER_NAMES

#: Concurrent clients; chosen so batches actually form (the batcher
#: drains whatever queued behind the in-flight dispatch).
CLIENTS = 16


def _deployment(scale_name: str, cache: str) -> Session:
    """Train + promote one model, then a fresh in-memory serving session."""
    data = load_or_build(PRESETS[scale_name], use_disk_cache=False)
    trainer = Session(scale_name, cache_dir=cache)
    trainer.models.fit(data.training)
    trainer.models.register(promote=True)
    return Session(scale_name, cache_dir=cache, use_disk_cache=False)


def _payloads(scale_name: str, top: int) -> list[dict]:
    """Counter-mode predict payloads over the scale's full training grid."""
    data = load_or_build(PRESETS[scale_name], use_disk_cache=False)
    training = data.training
    payloads = []
    for p, name in enumerate(training.program_names):
        for m, machine in enumerate(training.machines):
            payloads.append(
                {
                    "counters": dict(
                        zip(COUNTER_NAMES, training.counters[p, m, :])
                    ),
                    "machine": dataclasses.asdict(machine),
                    "top": top,
                    "program": name,
                }
            )
    return payloads


def _drive(
    service: PredictionService,
    payloads: list[dict],
    clients: int,
    per_client: int,
) -> tuple[float, list[str]]:
    """``clients`` threads, ``per_client`` requests each; returns
    (requests/sec, canonical response bytes indexed by request)."""
    total = clients * per_client
    responses: list[str] = [""] * total
    errors: list[BaseException] = []

    def client(cid: int) -> None:
        try:
            for i in range(per_client):
                index = cid * per_client + i
                responses[index] = canonical_json(
                    service.predict(payloads[index % len(payloads)])
                )
        except BaseException as error:  # noqa: BLE001 - fail the bench
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise SystemExit(f"client thread failed: {errors[0]}")
    return total / elapsed, responses


def test_serve_unbatched(benchmark, tmp_path):
    session = _deployment("tiny", str(tmp_path))
    payloads = _payloads("tiny", top=3)
    service = PredictionService(session, batching=False)
    service.predict(payloads[0])
    benchmark(lambda: _drive(service, payloads, CLIENTS, 5))


def test_serve_batched(benchmark, tmp_path):
    session = _deployment("tiny", str(tmp_path))
    payloads = _payloads("tiny", top=3)
    service = PredictionService(session, batching=True)
    service.predict(payloads[0])
    benchmark(lambda: _drive(service, payloads, CLIENTS, 5))


# --------------------------------------------------------------- artifact
def emit_artifact(out: str, smoke: bool) -> dict:
    """Time batched vs unbatched concurrent serving, write the artifact.

    Both services share one promoted model and answer the exact same
    request stream from ``CLIENTS`` concurrent threads; the batched
    responses must be byte-identical to the unbatched ones before any
    throughput is reported.
    """
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from perfjson import emit, measure, throughput

    scale_name, per_client, rounds = ("tiny", 15, 3) if smoke else ("tiny", 40, 5)
    top = 3
    with tempfile.TemporaryDirectory() as cache:
        session = _deployment(scale_name, cache)
        payloads = _payloads(scale_name, top)
        unbatched = PredictionService(session, batching=False)
        batched = PredictionService(session, batching=True)
        # Warm the version-immutable model cache out of the timed region.
        unbatched.predict(payloads[0])
        batched.predict(payloads[0])
        total = CLIENTS * per_client

        # Certify first: every response the batched service produced
        # under real concurrency must match the unbatched service's
        # answer for the same payload, byte for byte.
        _, reference = _drive(unbatched, payloads, CLIENTS, per_client)
        _, candidate = _drive(batched, payloads, CLIENTS, per_client)
        if reference != candidate:
            raise SystemExit(
                "micro-batched responses drifted from the unbatched reference"
            )

        unbatched_timing = throughput(
            measure(
                lambda: _drive(unbatched, payloads, CLIENTS, per_client),
                rounds=rounds,
            ),
            total,
        )
        batched_timing = throughput(
            measure(
                lambda: _drive(batched, payloads, CLIENTS, per_client),
                rounds=rounds,
            ),
            total,
        )
        batch_stats = batched.batcher.snapshot()

    payload = {
        "benchmark": "serve",
        "smoke": smoke,
        "scale": scale_name,
        "clients": CLIENTS,
        "requests_per_round": total,
        "top": top,
        "unbatched": unbatched_timing,
        "batched": batched_timing,
        "speedup": (
            unbatched_timing["best_seconds"] / batched_timing["best_seconds"]
        ),
        "max_batch": batch_stats["max_batch"],
        "batches": batch_stats["batches"],
        "exact_match": True,
    }
    emit(out, payload)
    return payload


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the batched/unbatched speedup lands below this",
    )
    args = parser.parse_args()
    result = emit_artifact(args.out, args.smoke)
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        raise SystemExit(
            f"speedup {result['speedup']:.2f}x below floor {args.min_speedup}x"
        )
