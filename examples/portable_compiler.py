"""The full portable-compiler deployment flow of the paper's Figure 2.

1. Off-line, once: generate training data (N random flag settings on a set
   of program/microarchitecture pairs), fit the model, and **register** it
   in the versioned model registry — the artifact deployments serve from.
2. A *new* program arrives on a *new* microarchitecture (neither was in the
   training data): a fresh session loads the registry's *promoted* model,
   runs the program once at -O3, reads the 11 hardware counters, predicts
   the best passes, recompiles, done.

Everything goes through the Session facets: ``session.models`` owns the
train -> register -> promote -> load -> predict lifecycle and
``session.eval`` the batched evaluation.  (This is the same registry the
``repro-experiments serve`` prediction service answers ``POST /predict``
from.)

Run:  python examples/portable_compiler.py
"""

import tempfile
from pathlib import Path

from repro.api import EvaluationRequest, Session
from repro.core import generate_training_set

TRAIN_PROGRAMS = (
    "qsort", "djpeg", "ispell", "bf_e", "tiffdither",
    "sha", "bitcnts", "rijndael_d", "crc", "susan_e",
)
NEW_PROGRAM = "rijndael_e"  # never seen during training


def main() -> None:
    session = Session()
    machines = session.machines(10, seed=42)
    new_machine = session.machines(11, seed=271)[-1]  # held out of training
    assert new_machine not in machines

    print("training (one-off, §3.2): "
          f"{len(TRAIN_PROGRAMS)} programs x {len(machines)} machines "
          "x 80 settings ...")
    training = generate_training_set(
        programs=[session.program(name) for name in TRAIN_PROGRAMS],
        machines=machines,
        n_settings=80,
        seed=7,
        compiler=session.compiler,
    )
    session.models.fit(training)
    registry_dir = Path(tempfile.mkdtemp(prefix="portable-compiler-")) / "registry"
    entry = session.models.register(registry=registry_dir, promote=True)
    print(f"model fitted, registered as v{entry.version:04d} and promoted "
          f"(training fingerprint {session.models.fingerprint}).\n")

    # --- deployment (§3.4): a fresh session serves the promoted model ------
    deployment = Session()
    deployment.models.load_registered(registry=registry_dir)
    print(f"new program '{NEW_PROGRAM}' on new machine {new_machine.label()}")

    prediction = deployment.models.predict(NEW_PROGRAM, new_machine)
    enabled = [
        name for name in ("finline_functions", "fschedule_insns",
                          "funswitch_loops", "funroll_loops", "fgcse",
                          "freorder_blocks")
        if prediction.setting.enabled(name)
    ]
    print(f"predicted passes (headline subset on): {', '.join(enabled) or '(none)'}")

    print(f"\n-O3:        {prediction.profile.cycles:12.3e} cycles")
    print(f"predicted:  {prediction.predicted_run.cycles:12.3e} cycles")
    print(f"speedup over -O3 from one profiling run: "
          f"{prediction.speedup_over_o3:.2f}x")

    # For reference: what 80 evaluations of iterative compilation achieve,
    # evaluated as one parallel batch.
    runs = deployment.eval.batch(
        [
            EvaluationRequest(NEW_PROGRAM, new_machine, setting)
            for setting in training.settings
        ],
        jobs=-1,
    )
    best_runtime = min(run.runtime for run in runs)
    print(f"iterative compilation (80 evaluations): "
          f"{prediction.profile.seconds / best_runtime:.2f}x")


if __name__ == "__main__":
    main()
