"""The full portable-compiler deployment flow of the paper's Figure 2.

1. Off-line, once: generate training data (N random flag settings on a set
   of program/microarchitecture pairs), fit the model, and persist it.
2. A *new* program arrives on a *new* microarchitecture (neither was in the
   training data): reload the model, run the program once at -O3, read the
   11 hardware counters, predict the best passes, recompile, done.

Everything goes through the Session façade, including the train → save →
load → predict model lifecycle.

Run:  python examples/portable_compiler.py
"""

import tempfile
from pathlib import Path

from repro.api import EvaluationRequest, Session
from repro.core import generate_training_set

TRAIN_PROGRAMS = (
    "qsort", "djpeg", "ispell", "bf_e", "tiffdither",
    "sha", "bitcnts", "rijndael_d", "crc", "susan_e",
)
NEW_PROGRAM = "rijndael_e"  # never seen during training


def main() -> None:
    session = Session()
    machines = session.machines(10, seed=42)
    new_machine = session.machines(11, seed=271)[-1]  # held out of training
    assert new_machine not in machines

    print("training (one-off, §3.2): "
          f"{len(TRAIN_PROGRAMS)} programs x {len(machines)} machines "
          "x 80 settings ...")
    training = generate_training_set(
        programs=[session.program(name) for name in TRAIN_PROGRAMS],
        machines=machines,
        n_settings=80,
        seed=7,
        compiler=session.compiler,
    )
    session.fit(training)
    model_path = Path(tempfile.mkdtemp(prefix="portable-compiler-")) / "model.json"
    session.save_model(model_path)
    print(f"model fitted and saved to {model_path} "
          f"(training fingerprint {session.model_fingerprint}).\n")

    # --- deployment (§3.4): a fresh session reloads the persisted model ----
    deployment = Session()
    deployment.load_model(model_path)
    print(f"new program '{NEW_PROGRAM}' on new machine {new_machine.label()}")

    prediction = deployment.predict(NEW_PROGRAM, new_machine)
    enabled = [
        name for name in ("finline_functions", "fschedule_insns",
                          "funswitch_loops", "funroll_loops", "fgcse",
                          "freorder_blocks")
        if prediction.setting.enabled(name)
    ]
    print(f"predicted passes (headline subset on): {', '.join(enabled) or '(none)'}")

    print(f"\n-O3:        {prediction.profile.cycles:12.3e} cycles")
    print(f"predicted:  {prediction.predicted_run.cycles:12.3e} cycles")
    print(f"speedup over -O3 from one profiling run: "
          f"{prediction.speedup_over_o3:.2f}x")

    # For reference: what 80 evaluations of iterative compilation achieve,
    # evaluated as one parallel batch.
    runs = deployment.evaluate_batch(
        [
            EvaluationRequest(NEW_PROGRAM, new_machine, setting)
            for setting in training.settings
        ],
        jobs=-1,
    )
    best_runtime = min(run.runtime for run in runs)
    print(f"iterative compilation (80 evaluations): "
          f"{prediction.profile.seconds / best_runtime:.2f}x")


if __name__ == "__main__":
    main()
