"""The full portable-compiler deployment flow of the paper's Figure 2.

1. Off-line, once: generate training data (N random flag settings on a set
   of program/microarchitecture pairs) and fit the model.
2. A *new* program arrives on a *new* microarchitecture (neither was in the
   training data): run it once at -O3, read the 11 hardware counters,
   predict the best passes, recompile, done.

Run:  python examples/portable_compiler.py
"""

from repro.compiler import Compiler, o3_setting
from repro.core import OptimisationPredictor, generate_training_set
from repro.machine import MicroArchSpace
from repro.programs import mibench_program
from repro.sim import simulate

TRAIN_PROGRAMS = (
    "qsort", "djpeg", "ispell", "bf_e", "tiffdither",
    "sha", "bitcnts", "rijndael_d", "crc", "susan_e",
)
NEW_PROGRAM = "rijndael_e"  # never seen during training


def main() -> None:
    compiler = Compiler()
    space = MicroArchSpace()
    machines = space.sample(10, seed=42)
    new_machine = space.sample(11, seed=271)[-1]  # held out of training
    assert new_machine not in machines

    print("training (one-off, §3.2): "
          f"{len(TRAIN_PROGRAMS)} programs x {len(machines)} machines "
          "x 80 settings ...")
    training = generate_training_set(
        programs=[mibench_program(name) for name in TRAIN_PROGRAMS],
        machines=machines,
        n_settings=80,
        seed=7,
        compiler=compiler,
    )
    model = OptimisationPredictor().fit(training)
    print("model fitted.\n")

    # --- deployment (§3.4) -------------------------------------------------
    program = mibench_program(NEW_PROGRAM)
    print(f"new program '{NEW_PROGRAM}' on new machine {new_machine.label()}")

    profile = simulate(program, new_machine)  # single -O3 profiling run
    predicted = model.predict(profile.counters, new_machine)

    enabled = [
        name for name in ("finline_functions", "fschedule_insns",
                          "funswitch_loops", "funroll_loops", "fgcse",
                          "freorder_blocks")
        if predicted.enabled(name)
    ]
    print(f"predicted passes (headline subset on): {', '.join(enabled) or '(none)'}")

    tuned = simulate(compiler.compile(program, predicted), new_machine)
    speedup = profile.seconds / tuned.seconds
    print(f"\n-O3:        {profile.cycles:12.3e} cycles")
    print(f"predicted:  {tuned.cycles:12.3e} cycles")
    print(f"speedup over -O3 from one profiling run: {speedup:.2f}x")

    # For reference: what 80 evaluations of iterative compilation achieve.
    best_runtime = min(
        simulate(compiler.compile(program, setting), new_machine).seconds
        for setting in training.settings
    )
    print(f"iterative compilation (80 evaluations): "
          f"{profile.seconds / best_runtime:.2f}x")


if __name__ == "__main__":
    main()
