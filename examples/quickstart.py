"""Quickstart: compile one benchmark two ways and run it on two machines.

This walks the paper's Figure 2 data path through the unified Session
façade:

    program name ──┐
    flag setting ──┼─→ Session.evaluate ─→ cycles, counters, runtime
    machine      ──┘

Run:  python examples/quickstart.py
"""

from repro.api import EvaluationRequest, Session
from repro.compiler import o3_setting
from repro.machine import xscale, xscale_small_icache
from repro.sim import COUNTER_NAMES


def main() -> None:
    session = Session()
    program = session.program("rijndael_e")
    print(f"program: {program.name} — {program.size_insns} static instructions, "
          f"{program.dynamic_insns:.3g} dynamic\n")

    # Two compilations: gcc-4.2-style -O3, and -O3 with the code-growing
    # passes disabled (what the paper's model learns to pick on small
    # instruction caches).
    lean_setting = o3_setting().with_values(
        finline_functions=False,
        funswitch_loops=False,
        fschedule_insns=False,
        falign_functions=False,
        falign_jumps=False,
        falign_loops=False,
        falign_labels=False,
    )
    print(f"-O3 binary:  {session.compile(program).describe()}")
    print(f"lean binary: {session.compile(program, lean_setting).describe()}\n")

    # One batch covers both settings on both machines; with --jobs-style
    # parallelism (jobs=2) the four runs fan out over worker processes.
    machines = [
        (xscale(), "XScale (32K I$)"),
        (xscale_small_icache(), "XScale variant (4K I$)"),
    ]
    requests = [
        EvaluationRequest(program, machine, setting)
        for machine, _ in machines
        for setting in (None, lean_setting)
    ]
    results = session.eval.batch(requests, jobs=2)

    for index, (machine, label) in enumerate(machines):
        o3_run, lean_run = results[2 * index], results[2 * index + 1]
        speedup = o3_run.runtime / lean_run.runtime
        print(f"on {label}:")
        print(f"  -O3   {o3_run.cycles:12.3e} cycles   "
              f"IPC {o3_run.counters.ipc:.3f}   "
              f"I$ miss {o3_run.counters.icache_miss_rate:.4f}")
        print(f"  lean  {lean_run.cycles:12.3e} cycles   "
              f"IPC {lean_run.counters.ipc:.3f}   "
              f"I$ miss {lean_run.counters.icache_miss_rate:.4f}")
        print(f"  lean-vs-O3 speedup: {speedup:.2f}x\n")

    # The 11 Table 1 counters of a single -O3 profiling run — exactly the
    # `c` part of the model's feature vector x = (c, d).
    profile = session.eval.evaluate(program, xscale())
    print("Table 1 counters of the -O3 profiling run on the XScale:")
    for name, value in zip(COUNTER_NAMES, profile.counters.vector()):
        print(f"  {name:18s} {value:10.4f}")


if __name__ == "__main__":
    main()
