"""Design-space exploration: why the best flags change with the machine.

Sweeps the instruction-cache size axis of Table 2 for rijndael_e under two
flag settings — one parallel Session batch over all (setting, machine)
points — and prints the crossover the paper's §2 example motivates: the
aggressive -O3 binary wins while its hot loop fits, then falls off a cliff
the lean binary does not have.

Run:  python examples/design_space_exploration.py
"""

import dataclasses

from repro.api import EvaluationRequest, Session
from repro.compiler import o3_setting
from repro.machine import BASE_GRID, xscale


def main() -> None:
    session = Session()
    program = session.program("rijndael_e")

    lean_setting = o3_setting().with_values(
        finline_functions=False,
        funswitch_loops=False,
        fschedule_insns=False,
        falign_functions=False,
        falign_jumps=False,
        falign_loops=False,
        falign_labels=False,
    )
    aggressive = session.compile(program)
    lean = session.compile(program, lean_setting)
    hot_aggressive = max(loop.code_bytes for loop in aggressive.loops)
    hot_lean = max(loop.code_bytes for loop in lean.loops)
    print(f"hot loop span: -O3 {hot_aggressive} bytes, lean {hot_lean} bytes\n")

    machines = [
        dataclasses.replace(xscale(), il1_size=il1_size)
        for il1_size in BASE_GRID["il1_size"]
    ]
    # The whole sweep is one batched evaluation: every (setting, machine)
    # point is independent, so it parallelises across all cores.
    results = session.eval.batch(
        [
            EvaluationRequest(program, machine, setting)
            for machine in machines
            for setting in (None, lean_setting)
        ],
        jobs=-1,
    )

    print(f"{'I-cache':>8s} {'-O3 Mcycles':>12s} {'lean Mcycles':>13s} "
          f"{'winner':>8s} {'lean gain':>10s}")
    for index, machine in enumerate(machines):
        o3_cycles = results[2 * index].cycles
        lean_cycles = results[2 * index + 1].cycles
        winner = "lean" if lean_cycles < o3_cycles else "-O3"
        gain = o3_cycles / lean_cycles
        print(f"{machine.il1_size // 1024:>6d}K {o3_cycles / 1e6:12.1f} "
              f"{lean_cycles / 1e6:13.1f} {winner:>8s} {gain:9.2f}x")

    print(
        "\nThe flags the compiler should pick depend on the "
        "microarchitecture — the problem the paper's model solves without "
        "retuning (its Figure 1/§2 example)."
    )


if __name__ == "__main__":
    main()
