"""§5.3's comparison: how many iterative-compilation evaluations does it
take to match the model's single profile run?

Runs the four search baselines on one program/machine pair via
Session.search and prints their convergence against the model's one-shot
prediction.

Run:  python examples/iterative_vs_model.py
"""

from repro.api import SearchRequest, Session
from repro.core import generate_training_set
from repro.machine import xscale_small_icache

TARGET = "rijndael_e"
BUDGET = 120


def main() -> None:
    session = Session()
    # Training machines must cover the small-I-cache corner of the space for
    # the model to have seen the thrash signature (its features include the
    # I-cache miss-rate counter); the target machine itself stays held out.
    machines = session.machines(10, seed=46)
    target_machine = xscale_small_icache()  # held out of training
    machines = [machine for machine in machines if machine != target_machine]

    # Train the model on other programs/machines, then predict one-shot.
    training = generate_training_set(
        programs=[
            session.program(name)
            for name in (
                "sha", "bitcnts", "susan_e", "crc", "tiffdither", "bf_e",
                "rijndael_d", "madplay", "say",
            )
        ],
        machines=machines,
        n_settings=60,
        seed=7,
        compiler=session.compiler,
    )
    session.models.fit(training)

    prediction = session.models.predict(TARGET, target_machine)
    model_runtime = prediction.predicted_run.seconds
    print(f"pair: {TARGET} on {target_machine.label()}")
    print(f"model one-shot speedup over -O3: {prediction.speedup_over_o3:.3f}x\n")

    print(f"{'search':<22s} {'best speedup':>12s} {'evals to match model':>22s}")
    for label, algorithm in [
        ("random search", "random"),
        ("hill climbing", "hillclimb"),
        ("genetic algorithm", "genetic"),
        ("combined elimination", "combined-elimination"),
    ]:
        outcome = session.eval.search(
            SearchRequest(
                program=TARGET,
                machine=target_machine,
                algorithm=algorithm,
                budget=BUDGET,
                seed=3,
            )
        )
        to_match = outcome.evaluations_to_reach(model_runtime)
        print(
            f"{label:<22s} {outcome.best_speedup:12.3f} "
            f"{to_match if to_match is not None else f'>{BUDGET}':>22}"
        )

    print(
        "\nThe paper reports random iterative compilation needs ~50 "
        "evaluations on average to match the model's single profiling run."
    )


if __name__ == "__main__":
    main()
