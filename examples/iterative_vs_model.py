"""§5.3's comparison: how many iterative-compilation evaluations does it
take to match the model's single profile run?

Runs the four search baselines on one program/machine pair and prints their
convergence against the model's one-shot prediction.

Run:  python examples/iterative_vs_model.py
"""

from repro.compiler import Compiler, o3_setting
from repro.core import OptimisationPredictor, generate_training_set
from repro.machine import MicroArchSpace, xscale_small_icache
from repro.programs import mibench_program
from repro.search import (
    Evaluator,
    combined_elimination,
    genetic_search,
    hill_climb,
    random_search,
)
from repro.sim import simulate

TARGET = "rijndael_e"
BUDGET = 120


def main() -> None:
    compiler = Compiler()
    space = MicroArchSpace()
    # Training machines must cover the small-I-cache corner of the space for
    # the model to have seen the thrash signature (its features include the
    # I-cache miss-rate counter); the target machine itself stays held out.
    machines = space.sample(10, seed=46)
    target_machine = xscale_small_icache()  # held out of training
    machines = [machine for machine in machines if machine != target_machine]

    # Train the model on other programs/machines, then predict one-shot.
    training_programs = [
        mibench_program(name)
        for name in (
            "sha", "bitcnts", "susan_e", "crc", "tiffdither", "bf_e",
            "rijndael_d", "madplay", "say",
        )
    ]
    training = generate_training_set(
        training_programs, machines, n_settings=60, seed=7, compiler=compiler
    )
    model = OptimisationPredictor().fit(training)

    program = mibench_program(TARGET)
    profile = simulate(program, target_machine)
    predicted = model.predict(profile.counters, target_machine)
    model_runtime = simulate(
        compiler.compile(program, predicted), target_machine
    ).seconds
    o3_runtime = profile.seconds
    print(f"pair: {TARGET} on {target_machine.label()}")
    print(f"model one-shot speedup over -O3: {o3_runtime / model_runtime:.3f}x\n")

    print(f"{'search':<22s} {'best speedup':>12s} {'evals to match model':>22s}")
    for label, driver in [
        ("random search", lambda ev: random_search(ev, BUDGET, seed=3)),
        ("hill climbing", lambda ev: hill_climb(ev, BUDGET, seed=3)),
        ("genetic algorithm", lambda ev: genetic_search(ev, BUDGET, seed=3)),
        ("combined elimination", lambda ev: combined_elimination(ev, budget=BUDGET)),
    ]:
        evaluator = Evaluator(program, target_machine, compiler=compiler)
        result = driver(evaluator)
        to_match = result.evaluations_to_reach(model_runtime)
        print(
            f"{label:<22s} {o3_runtime / result.best_runtime:12.3f} "
            f"{to_match if to_match is not None else f'>{BUDGET}':>22}"
        )

    print(
        "\nThe paper reports random iterative compilation needs ~50 "
        "evaluations on average to match the model's single profiling run."
    )


if __name__ == "__main__":
    main()
