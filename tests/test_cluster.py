"""The lease-based cluster tier (repro.cluster).

The load-bearing guarantees, each tested directly:

* claims are exclusive (``O_EXCL``), heartbeats keep them alive, stale
  leases are reclaimed by exactly one contender;
* a lease table refuses to coordinate a different manifest fingerprint;
* a claimed unit is re-checked against the store before computing, so a
  reclaim of a finished unit costs zero re-simulation;
* N workers draining one store produce byte-identical output to a
  serial build, with no unit computed by two workers absent a crash;
* a hypothesis-driven interleaving of (claim, crash, expire, reclaim)
  never executes a completed unit twice and always converges to the
  serial bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterError,
    ClusterStatus,
    ClusterWorker,
    FoldQueue,
    LeaseTable,
    ShardQueue,
    run_local_workers,
    store_cluster_status,
)
from repro.evalrun import (
    EvaluationPipeline,
    FoldStore,
    protocol_fingerprint,
    protocol_variants,
)
from repro.experiments.config import Scale
from repro.experiments.dataset import grid_for_scale
from repro.programs.mibench import mibench_program
from repro.store import ExperimentRunner, ExperimentStore

#: Same geometry as the store tests: 4 machines / chunk 2 -> 4 shards.
SMOKE = Scale(name="smoke", programs=("crc", "search"), n_machines=4, n_settings=6)


@pytest.fixture(scope="module")
def smoke_grid():
    return grid_for_scale(SMOKE, chunk_machines=2)


@pytest.fixture(scope="module")
def smoke_programs():
    return [mibench_program(name) for name in SMOKE.programs]


@pytest.fixture(scope="module")
def serial_fingerprint(tmp_path_factory, smoke_grid, smoke_programs):
    """The ground-truth store fingerprint every cluster drain must hit."""
    store = ExperimentStore(
        smoke_grid, root=tmp_path_factory.mktemp("serial") / "store"
    )
    ExperimentRunner(store, programs=smoke_programs).run()
    return store.fingerprint()


def _shard_worker(root, grid, programs, **kwargs):
    """One worker with its own store/runner objects, as a real process has."""
    store = ExperimentStore(grid, root=root)
    runner = ExperimentRunner(store, programs=programs)
    return ClusterWorker(ShardQueue(runner), lease_ttl=10.0, **kwargs)


class TestLeaseTable:
    def test_claim_is_exclusive(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=60.0)
        assert table.try_claim("u1", "alice")
        assert not table.try_claim("u1", "bob")
        assert table.owner_of("u1") == "alice"
        assert table.try_claim("u2", "bob")

    def test_release_requires_ownership(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=60.0)
        table.try_claim("u1", "alice")
        assert not table.release("u1", "bob")
        assert table.owner_of("u1") == "alice"
        assert table.release("u1", "alice")
        assert table.owner_of("u1") is None
        assert table.try_claim("u1", "bob")  # released units reclaim freely

    def test_heartbeat_requires_ownership(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=60.0)
        table.try_claim("u1", "alice")
        assert table.heartbeat("u1", "alice")
        assert not table.heartbeat("u1", "bob")
        assert not table.heartbeat("missing", "alice")

    def test_stale_lease_is_reclaimed(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=0.05)
        assert table.try_claim("u1", "dead-worker")
        time.sleep(0.15)
        [lease] = table.leases()
        assert lease.stale and lease.owner == "dead-worker"
        assert table.try_claim("u1", "successor")
        assert table.owner_of("u1") == "successor"

    def test_heartbeat_keeps_a_lease_fresh(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=0.2)
        table.try_claim("u1", "alice")
        for _ in range(4):
            time.sleep(0.08)
            assert table.heartbeat("u1", "alice")
        [lease] = table.leases()
        assert not lease.stale
        assert not table.try_claim("u1", "bob")

    def test_concurrent_claims_have_one_winner(self, tmp_path):
        table = LeaseTable(tmp_path, "fp", ttl=60.0)
        wins = []
        barrier = threading.Barrier(8)

        def contend(name):
            barrier.wait()
            if table.try_claim("u1", name):
                wins.append(name)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1
        assert table.owner_of("u1") == wins[0]

    def test_fingerprint_mismatch_fails_fast(self, tmp_path):
        LeaseTable(tmp_path, "grid-aaaa", ttl=60.0)
        with pytest.raises(ClusterError) as excinfo:
            LeaseTable(tmp_path, "grid-bbbb", ttl=60.0)
        message = str(excinfo.value)
        assert "grid-aaaa" in message and "grid-bbbb" in message

    def test_unknown_format_fails_fast(self, tmp_path):
        LeaseTable(tmp_path, "fp", ttl=60.0)
        meta = tmp_path / LeaseTable.META_NAME
        meta.write_text(json.dumps({"format": 99, "fingerprint": "fp"}))
        with pytest.raises(ClusterError, match="format"):
            LeaseTable(tmp_path, "fp", ttl=60.0)

    def test_bad_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseTable(tmp_path, "fp", ttl=0.0)


class _FakeQueue:
    """A synthetic queue for worker-loop semantics, no simulation needed."""

    kind = "fake"

    def __init__(self, tmp_path, units):
        self.fingerprint = "fake-fp"
        self.cluster_root = tmp_path / "cluster"
        self.done = {unit: False for unit in units}
        self.executed = []
        self.stale_scan = None  # optionally served once, then real scans

    def total_units(self):
        return len(self.done)

    def pending_units(self):
        if self.stale_scan is not None:
            scan, self.stale_scan = self.stale_scan, None
            return scan
        return [unit for unit, done in self.done.items() if not done]

    def is_done(self, unit):
        return self.done[unit]

    def execute(self, unit):
        assert not self.done[unit], f"{unit} executed after completion"
        self.done[unit] = True
        self.executed.append(unit)
        return {"simulation_calls": 1}


class TestWorkerLoop:
    def test_single_worker_drains_everything(self, tmp_path):
        queue = _FakeQueue(tmp_path, ["a", "b", "c"])
        report = ClusterWorker(queue, worker_id="solo", lease_ttl=5.0).run()
        assert report.units_completed == 3
        assert report.units_skipped == 0
        assert sorted(queue.executed) == ["a", "b", "c"]
        table = LeaseTable(queue.cluster_root / "leases", "fake-fp", ttl=5.0)
        assert table.leases() == []  # every claim released

    def test_claim_recheck_skips_completed_units(self, tmp_path):
        """The zero-re-simulation guarantee: a unit that completed between
        scan and claim (or whose crashed first owner had finished) is
        released untouched — a sidecar read, never a computation."""
        queue = _FakeQueue(tmp_path, ["a", "b"])
        queue.done["a"] = True
        queue.stale_scan = ["a", "b"]  # a scan from before 'a' finished
        report = ClusterWorker(queue, worker_id="late", lease_ttl=5.0).run()
        assert report.units_skipped == 1
        assert report.units_completed == 1
        assert queue.executed == ["b"]

    def test_reclaim_of_crashed_worker_unit(self, tmp_path):
        """A stale lease on an *unfinished* unit is reclaimed and the
        unit computed exactly once by the successor."""
        queue = _FakeQueue(tmp_path, ["a", "b"])
        table = LeaseTable(queue.cluster_root / "leases", "fake-fp", ttl=0.05)
        assert table.try_claim("a", "dead-worker")  # crashed mid-unit
        time.sleep(0.15)
        report = ClusterWorker(
            queue, worker_id="successor", lease_ttl=0.05, poll_interval=0.01
        ).run()
        assert report.units_completed == 2
        assert sorted(queue.executed) == ["a", "b"]

    def test_reclaim_of_finished_crashed_worker_unit(self, tmp_path):
        """A worker that finished its unit but died before releasing:
        the successor reclaims the stale lease, sees the unit done, and
        skips — zero re-simulation."""
        queue = _FakeQueue(tmp_path, ["a", "b"])
        table = LeaseTable(queue.cluster_root / "leases", "fake-fp", ttl=0.05)
        queue.done["a"] = True  # the dead worker's write landed
        assert table.try_claim("a", "dead-worker")
        time.sleep(0.15)
        queue.stale_scan = ["a", "b"]  # successor's scan predates the write
        report = ClusterWorker(
            queue, worker_id="successor", lease_ttl=0.05, poll_interval=0.01
        ).run()
        assert report.units_skipped == 1
        assert queue.executed == ["b"]

    def test_max_units_caps_the_drain(self, tmp_path):
        queue = _FakeQueue(tmp_path, ["a", "b", "c"])
        report = ClusterWorker(
            queue, worker_id="budgeted", lease_ttl=5.0, max_units=2
        ).run()
        assert report.units_completed == 2
        assert len(queue.executed) == 2

    def test_worker_waits_out_a_live_peer(self, tmp_path):
        """All pending units leased by a live peer: the worker naps, and
        finishes once the peer releases."""
        queue = _FakeQueue(tmp_path, ["a"])
        table = LeaseTable(queue.cluster_root / "leases", "fake-fp", ttl=5.0)
        assert table.try_claim("a", "peer")

        def finish_peer():
            time.sleep(0.1)
            queue.done["a"] = True
            queue.executed.append("a")
            table.release("a", "peer")

        thread = threading.Thread(target=finish_peer)
        thread.start()
        report = ClusterWorker(
            queue, worker_id="waiter", lease_ttl=5.0, poll_interval=0.02
        ).run()
        thread.join()
        assert report.units_completed == 0
        assert report.wait_seconds > 0


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary (claim, crash, expire, reclaim) interleavings.
# ---------------------------------------------------------------------------
UNITS = ("u0", "u1", "u2")
WORKERS = ("w0", "w1", "w2")
#: op = (kind, worker index, unit index); kinds cover the failure matrix.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["claim", "complete", "crash", "expire"]),
        st.integers(min_value=0, max_value=len(WORKERS) - 1),
        st.integers(min_value=0, max_value=len(UNITS) - 1),
    ),
    max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_interleavings_never_double_execute(ops):
    """Whatever the order of claims, crashes, lease expiries, and
    reclaims, no unit is ever executed after it completed, and the final
    store content equals the serial build's."""
    with tempfile.TemporaryDirectory() as tmp:
        _run_interleaving(Path(tmp), ops)


def _run_interleaving(tmp_path, ops):
    table = LeaseTable(tmp_path / "leases", "fp", ttl=60.0)
    store = {}  # unit -> bytes; the shared append-only store
    serial = {unit: f"content-{unit}" for unit in UNITS}
    executions = []
    holding = {worker: None for worker in WORKERS}
    crashed = set()

    def lease_path(unit):
        return tmp_path / "leases" / f"{unit}{LeaseTable.SUFFIX}"

    for kind, worker_index, unit_index in ops:
        worker = WORKERS[worker_index]
        unit = UNITS[unit_index]
        if kind == "claim" and worker not in crashed:
            if holding[worker] is None and table.try_claim(unit, worker):
                if unit in store:
                    table.release(unit, worker)  # the is_done recheck
                else:
                    holding[worker] = unit
        elif kind == "complete" and worker not in crashed:
            held = holding[worker]
            if held is not None:
                # Idempotent write: first complete write wins, any
                # duplicate writes identical bytes.
                assert held not in store or store[held] == serial[held]
                executions.append(held)
                store.setdefault(held, serial[held])
                table.release(held, worker)
                holding[worker] = None
        elif kind == "crash":
            crashed.add(worker)
            holding[worker] = None  # lease file stays behind, unreleased
        elif kind == "expire":
            path = lease_path(unit)
            if path.exists():
                past = time.time() - 3600.0
                os.utime(path, (past, past))

    # Finally a fresh worker (never crashes) drains what is left, the
    # way a real cluster converges after any failure pattern.
    for unit in UNITS:
        if unit in store:
            continue
        path = lease_path(unit)
        if path.exists():
            past = time.time() - 3600.0
            os.utime(path, (past, past))  # survivors' leases expire too
        assert table.try_claim(unit, "finisher")
        executions.append(unit)
        store[unit] = serial[unit]
        table.release(unit, "finisher")

    assert store == serial  # byte-identical to the serial build
    # No unit double-counted: each executed at most once per lease
    # generation, and completed units are never re-executed — which
    # bounds executions by one per (unit, crash-before-complete).
    crashes_before_complete = sum(
        1
        for kind, worker_index, _ in ops
        if kind == "crash"
    )
    for unit in UNITS:
        count = executions.count(unit)
        assert count >= 1
        assert count <= 1 + crashes_before_complete


class TestClusterDrain:
    """Real stores, real simulation: the ISSUE's acceptance criteria."""

    def test_three_workers_byte_identical_to_serial(
        self, tmp_path, smoke_grid, smoke_programs, serial_fingerprint
    ):
        root = tmp_path / "store"
        workers = [
            _shard_worker(root, smoke_grid, smoke_programs, poll_interval=0.02)
            for _ in range(3)
        ]
        reports = [None] * 3
        threads = [
            threading.Thread(
                target=lambda i=i: reports.__setitem__(i, workers[i].run())
            )
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        store = ExperimentStore(smoke_grid, root=root)
        assert store.is_complete()
        assert store.fingerprint() == serial_fingerprint
        # Every unit computed exactly once across the fleet (no crash
        # here, so skips are the only benign overlap — and they carry
        # zero simulation).
        assert sum(r.units_completed for r in reports) == smoke_grid.n_shards
        # All leases released; progress artifact left behind.
        assert list((root / "cluster" / "leases").glob("*.lease")) == []
        progress = json.loads((root / "cluster" / "progress.json").read_text())
        assert progress["completed_units"] == smoke_grid.n_shards
        assert progress["leased_units"] == []

    def test_killed_worker_unit_is_reclaimed(
        self, tmp_path, smoke_grid, smoke_programs, serial_fingerprint
    ):
        """kill -9 mid-shard, modelled exactly: a claim file with no
        owner process behind it.  The lease expires, a later worker
        reclaims, and the final bytes match serial."""
        root = tmp_path / "store"
        store = ExperimentStore(smoke_grid, root=root)
        runner = ExperimentRunner(store, programs=smoke_programs)
        queue = ShardQueue(runner)
        table = LeaseTable(
            queue.cluster_root / "leases", queue.fingerprint, ttl=0.2
        )
        victim_unit = queue.pending_units()[0]
        assert table.try_claim(victim_unit, "killed-9")  # then it dies
        time.sleep(0.5)

        worker = _shard_worker(root, smoke_grid, smoke_programs)
        worker.leases.ttl = 0.2  # match the dead worker's table
        report = worker.run()
        assert report.units_completed == smoke_grid.n_shards
        assert ExperimentStore(smoke_grid, root=root).fingerprint() == (
            serial_fingerprint
        )

    def test_cluster_executor_matches_serial(
        self, tmp_path, smoke_grid, smoke_programs, serial_fingerprint
    ):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        built = ExperimentRunner(
            store, programs=smoke_programs, executor="cluster"
        ).run()
        assert built == smoke_grid.n_shards
        assert store.fingerprint() == serial_fingerprint

    def test_cluster_executor_requires_disk_store(
        self, smoke_grid, smoke_programs
    ):
        store = ExperimentStore(smoke_grid, root=None)
        runner = ExperimentRunner(
            store, programs=smoke_programs, executor="cluster"
        )
        with pytest.raises(ClusterError, match="memory-only"):
            runner.run()

    def test_complete_store_leaves_no_cluster_dir(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        root = tmp_path / "store"
        store = ExperimentStore(smoke_grid, root=root)
        ExperimentRunner(store, programs=smoke_programs).run()
        built = ExperimentRunner(
            store, programs=smoke_programs, executor="cluster"
        ).run()
        assert built == 0
        assert not (root / "cluster").exists()

    def test_mismatched_grid_worker_fails_fast(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        root = tmp_path / "store"
        worker = _shard_worker(root, smoke_grid, smoke_programs)
        other_grid = grid_for_scale(
            Scale(
                name="smoke",
                programs=("crc", "search"),
                n_machines=4,
                n_settings=8,
            ),
            chunk_machines=2,
        )
        # A second cluster over the same lease directory with a
        # different manifest must refuse to start.
        with pytest.raises(ClusterError, match="different"):
            LeaseTable(
                worker.leases.root, other_grid.fingerprint(), ttl=10.0
            )


class TestFoldCluster:
    def _pipeline(self, tiny_data, root, **kwargs):
        variants = protocol_variants(
            with_code=tiny_data.training.code_features is not None
        )
        store = FoldStore(
            protocol_fingerprint(tiny_data.training, variants),
            variants,
            list(tiny_data.training.program_names),
            root=root,
        )
        return EvaluationPipeline(
            tiny_data.training, tiny_data.programs, store, **kwargs
        )

    def test_three_workers_byte_identical_to_serial(self, tiny_data, tmp_path):
        only = ["base"]
        serial = self._pipeline(tiny_data, tmp_path / "serial")
        serial.run(variants=only)
        reference = serial.store.fingerprint(only)

        root = tmp_path / "cluster"
        reports = [None] * 3

        def drain(index):
            pipeline = self._pipeline(tiny_data, root)
            worker = ClusterWorker(
                FoldQueue(pipeline, only), lease_ttl=10.0, poll_interval=0.02
            )
            reports[index] = worker.run()

        threads = [
            threading.Thread(target=drain, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        clustered = self._pipeline(tiny_data, root)
        assert clustered.store.pending_keys(only) == []
        assert clustered.store.fingerprint(only) == reference
        total = sum(r.units_completed for r in reports)
        assert total == len(list(clustered.store.fold_keys(only)))

    def test_pipeline_cluster_executor_matches_serial(
        self, tiny_data, tmp_path
    ):
        only = ["base"]
        serial = self._pipeline(tiny_data, tmp_path / "serial")
        serial.run(variants=only)
        clustered = self._pipeline(
            tiny_data, tmp_path / "cluster", executor="cluster"
        )
        stats = clustered.run(variants=only)
        assert stats.folds_computed == len(list(serial.store.fold_keys(only)))
        assert clustered.store.fingerprint(only) == (
            serial.store.fingerprint(only)
        )


class TestClusterStatus:
    def test_collect_and_render(self, tmp_path):
        queue = _FakeQueue(tmp_path, ["a", "b"])
        ClusterWorker(queue, worker_id="render-me", lease_ttl=5.0).run()
        status = ClusterStatus.collect(queue, ttl=5.0)
        assert status.total_units == 2
        assert status.completed_units == 2
        assert status.leases == []
        [worker] = status.workers
        assert worker.worker_id == "render-me"
        assert worker.units == 2 and worker.done
        rendered = status.render()
        assert "2/2 complete" in rendered
        assert "render-me" in rendered and "[done]" in rendered

    def test_orphaned_leases_are_reported(self, tmp_path):
        queue = _FakeQueue(tmp_path, ["a"])
        table = LeaseTable(queue.cluster_root / "leases", "fake-fp", ttl=0.05)
        table.try_claim("a", "dead-worker")
        time.sleep(0.15)
        status = ClusterStatus.collect(queue, ttl=0.05)
        assert [lease.unit for lease in status.orphaned_leases] == ["a"]
        assert "reclaimable" in status.render()

    def test_store_cluster_status_reads_without_side_effects(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        root = tmp_path / "store"
        store = ExperimentStore(smoke_grid, root=root)
        # Never clustered: no view, and crucially no directory created.
        assert store_cluster_status(store, ttl=5.0) is None
        assert not (root / "cluster").exists()

        worker = _shard_worker(root, smoke_grid, smoke_programs)
        worker.run()
        status = store_cluster_status(
            ExperimentStore(smoke_grid, root=root), ttl=5.0
        )
        assert status is not None
        assert status.completed_units == smoke_grid.n_shards

    def test_memory_store_has_no_cluster_status(self, smoke_grid):
        assert store_cluster_status(
            ExperimentStore(smoke_grid, root=None), ttl=5.0
        ) is None


class TestLocalFleet:
    def test_run_local_workers_rejects_bad_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_local_workers(["--scale", "tiny"], workers=0)
