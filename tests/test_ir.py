"""Tests for the IR (repro.compiler.ir)."""

import pytest

from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
    dynamic_mix,
    fresh_label,
    iter_instructions,
)
from tests.conftest import simple_loop_program


class TestOpcode:
    def test_categories_cover_all_opcodes(self):
        for opcode in Opcode:
            assert opcode.category in ("alu", "mac", "shift", "load", "store", "ctrl")

    def test_memory_classification(self):
        assert Opcode.LOAD.is_memory
        assert Opcode.STORE.is_memory
        assert not Opcode.ADD.is_memory

    def test_branch_classification(self):
        for opcode in (Opcode.BR, Opcode.JMP, Opcode.CALL, Opcode.RET):
            assert opcode.is_branch
        assert not Opcode.MUL.is_branch

    def test_register_reads(self):
        assert Opcode.MAC.register_reads == 3
        assert Opcode.STORE.register_reads == 2
        assert Opcode.JMP.register_reads == 0


class TestInstruction:
    def test_default_latency_from_category(self):
        assert Instruction(opcode=Opcode.ADD).latency == 1
        assert Instruction(opcode=Opcode.MUL).latency == 3
        assert Instruction(opcode=Opcode.LOAD, region="r").latency == 3

    def test_memory_requires_region(self):
        with pytest.raises(ValueError, match="region"):
            Instruction(opcode=Opcode.LOAD)

    def test_call_requires_callee(self):
        with pytest.raises(ValueError, match="callee"):
            Instruction(opcode=Opcode.CALL)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="tags"):
            Instruction(opcode=Opcode.ADD, tags=frozenset({"nope"}))

    def test_bad_dep_distance_rejected(self):
        with pytest.raises(ValueError, match="distance"):
            Instruction(opcode=Opcode.ADD, deps=((0, "alu"),))

    def test_bad_dep_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Instruction(opcode=Opcode.ADD, deps=((1, "bogus"),))

    def test_clone_is_independent(self):
        original = Instruction(opcode=Opcode.ADD, expr="x", deps=((1, "alu"),))
        clone = original.clone()
        clone.deps = ()
        clone.expr = "y"
        assert original.expr == "x"
        assert original.deps == ((1, "alu"),)

    def test_size_is_fixed_width(self):
        assert Instruction(opcode=Opcode.ADD).size_bytes == 4


class TestBasicBlock:
    def test_size_includes_padding(self):
        block = BasicBlock("b", [Instruction(opcode=Opcode.ADD)], pad_bytes=12)
        assert block.size_bytes == 16

    def test_terminator_detection(self):
        block = BasicBlock(
            "b",
            [Instruction(opcode=Opcode.ADD), Instruction(opcode=Opcode.BR)],
        )
        assert block.terminator is not None
        assert block.terminator.opcode is Opcode.BR

    def test_no_terminator(self):
        block = BasicBlock("b", [Instruction(opcode=Opcode.ADD)])
        assert block.terminator is None

    def test_body_and_terminator_split(self):
        insns = [Instruction(opcode=Opcode.ADD), Instruction(opcode=Opcode.JMP)]
        block = BasicBlock("b", insns)
        body, terminator = block.body_and_terminator()
        assert len(body) == 1
        assert terminator.opcode is Opcode.JMP

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock("b", taken_prob=1.5)
        with pytest.raises(ValueError):
            BasicBlock("b", predictability=-0.1)

    def test_clone_deep_copies_instructions(self):
        block = BasicBlock("b", [Instruction(opcode=Opcode.ADD, expr="x")])
        clone = block.clone("c")
        clone.instructions[0].expr = "y"
        assert block.instructions[0].expr == "x"
        assert clone.label == "c"


class TestLoop:
    def test_header_must_be_member(self):
        with pytest.raises(ValueError, match="header"):
            Loop(header="h", blocks=["a"], trip_count=2.0, entries=1.0)

    def test_iterations(self):
        loop = Loop(header="h", blocks=["h"], trip_count=10.0, entries=3.0)
        assert loop.iterations == 30.0

    def test_trip_count_minimum(self):
        with pytest.raises(ValueError):
            Loop(header="h", blocks=["h"], trip_count=0.5, entries=1.0)


class TestDataRegion:
    def test_valid_kinds(self):
        for kind in DataRegion.VALID_KINDS:
            DataRegion("r", 64, kind)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            DataRegion("r", 64, "heap")

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            DataRegion("r", 0)


class TestFunctionAndProgram:
    def test_layout_must_match_blocks(self):
        block = BasicBlock("a")
        with pytest.raises(ValueError, match="layout"):
            Function(name="f", blocks={"a": block}, layout=["a", "b"])

    def test_size_accounting(self, loop_program):
        function = loop_program.functions["main"]
        assert function.size_insns == sum(
            len(block.instructions) for block in function.blocks.values()
        )
        assert function.size_bytes == function.size_insns * 4

    def test_dynamic_insns_weighted_by_profile(self, loop_program):
        function = loop_program.functions["main"]
        manual = sum(
            block.exec_count * len(block.instructions)
            for block in function.blocks.values()
        )
        assert function.dynamic_insns == pytest.approx(manual)

    def test_innermost_loops(self, loop_program):
        loops = loop_program.functions["main"].innermost_loops()
        assert [loop.header for loop in loops] == ["hdr"]

    def test_loop_of_block(self, loop_program):
        function = loop_program.functions["main"]
        assert function.loop_of_block("body").header == "hdr"
        assert function.loop_of_block("entry") is None

    def test_validate_unknown_successor(self, loop_program):
        loop_program.functions["main"].blocks["exit"].successors = ["nowhere"]
        with pytest.raises(ValueError, match="successor"):
            loop_program.validate()

    def test_validate_unknown_region(self, loop_program):
        del loop_program.regions["data"]
        with pytest.raises(ValueError, match="region"):
            loop_program.validate()

    def test_validate_unknown_callee(self, loop_program):
        block = loop_program.functions["main"].blocks["body"]
        block.instructions.append(Instruction(opcode=Opcode.CALL, callee="ghost"))
        with pytest.raises(ValueError, match="callee"):
            loop_program.validate()

    def test_entry_must_exist(self, loop_program):
        with pytest.raises(ValueError, match="entry"):
            Program(
                name="p",
                functions=loop_program.functions,
                entry="nonexistent",
                regions=loop_program.regions,
            )

    def test_clone_is_deep(self, loop_program):
        clone = loop_program.clone()
        clone.functions["main"].blocks["body"].instructions.clear()
        assert loop_program.functions["main"].blocks["body"].instructions

    def test_dynamic_mix_sums_to_dynamic_insns(self, loop_program):
        mix = dynamic_mix(loop_program)
        assert sum(mix.values()) == pytest.approx(loop_program.dynamic_insns)

    def test_iter_instructions_covers_everything(self, loop_program):
        count = sum(1 for _ in iter_instructions(loop_program))
        assert count == loop_program.size_insns


class TestFreshLabel:
    def test_unused_base_returned_as_is(self):
        assert fresh_label(["a", "b"], "c") == "c"

    def test_collision_gets_suffix(self):
        assert fresh_label(["c"], "c") == "c.1"
        assert fresh_label(["c", "c.1"], "c") == "c.2"


class TestSimpleLoopProgramFixture:
    def test_profile_consistency(self):
        program = simple_loop_program(trip_count=50.0, entries=4.0)
        loop = program.functions["main"].loops[0]
        assert loop.iterations == pytest.approx(200.0)
        header = program.functions["main"].blocks["hdr"]
        assert header.exec_count == pytest.approx(200.0)
