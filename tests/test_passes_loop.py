"""Tests for loop optimisations: invariant motion, unswitching, strength
reduction."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
    TAG_INDUCTION,
    TAG_INVARIANT,
)
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.loopopt import (
    LoopInvariantMotionPass,
    RerunLoopOptPass,
    StrengthReducePass,
    UnswitchLoopsPass,
)
from tests.conftest import simple_loop_program


def _guarded_loop_program() -> Program:
    """Loop whose body tests an invariant condition (unswitch candidate)."""
    pre = BasicBlock(
        "pre",
        [Instruction(opcode=Opcode.MOV, expr="p")],
        successors=["hdr"],
        exec_count=2.0,
    )
    hdr = BasicBlock(
        "hdr",
        [
            Instruction(opcode=Opcode.ADD, expr="h"),
            Instruction(opcode=Opcode.CMP, expr="g"),
            Instruction(opcode=Opcode.BR),
        ],
        successors=["guarded", "latch"],
        exec_count=100.0,
        taken_prob=0.1,
        invariant_branch=True,
        is_loop_header=True,
    )
    guarded = BasicBlock(
        "guarded",
        [Instruction(opcode=Opcode.ADD, expr="gb")],
        successors=["latch"],
        exec_count=90.0,
    )
    latch = BasicBlock(
        "latch",
        [Instruction(opcode=Opcode.CMP, expr="l"), Instruction(opcode=Opcode.BR)],
        successors=["exit", "hdr"],
        exec_count=100.0,
        taken_prob=0.98,
    )
    exit_block = BasicBlock(
        "exit", [Instruction(opcode=Opcode.RET)], exec_count=2.0
    )
    function = Function(
        name="main",
        blocks={
            "pre": pre,
            "hdr": hdr,
            "guarded": guarded,
            "latch": latch,
            "exit": exit_block,
        },
        layout=["pre", "hdr", "guarded", "latch", "exit"],
        loops=[
            Loop(
                header="hdr",
                blocks=["hdr", "guarded", "latch"],
                trip_count=50.0,
                entries=2.0,
            )
        ],
        entry_count=1.0,
    )
    program = Program(
        name="guarded",
        functions={"main": function},
        entry="main",
        regions={"stack": DataRegion("stack", 4096, "stack")},
    )
    program.validate()
    return program


class TestInvariantMotion:
    def _invariant_program(self, chain: int) -> Program:
        program = simple_loop_program()
        body = program.functions["main"].blocks["body"]
        body.instructions.insert(
            0,
            Instruction(
                opcode=Opcode.ADD,
                expr="inv",
                tags=frozenset({TAG_INVARIANT}),
                chain=chain,
            ),
        )
        return program

    def test_first_sweep_hoists_chain_one(self):
        program = self._invariant_program(chain=1)
        stats = PassStats()
        LoopInvariantMotionPass().apply(program, o3_setting(), stats)
        assert stats["loop.invariants_hoisted"] == 1
        pre = program.functions["main"].blocks["pre"]
        assert any(insn.expr == "inv" for insn in pre.instructions)

    def test_first_sweep_leaves_chain_two(self):
        program = self._invariant_program(chain=2)
        stats = PassStats()
        LoopInvariantMotionPass().apply(program, o3_setting(), stats)
        assert stats["loop.invariants_hoisted"] == 0

    def test_rerun_hoists_chain_two(self):
        program = self._invariant_program(chain=2)
        stats = PassStats()
        RerunLoopOptPass().apply(program, o3_setting(), stats)
        assert stats["loop.invariants_hoisted"] == 1

    def test_rerun_gated_by_flag(self):
        program = self._invariant_program(chain=2)
        stats = PassStats()
        RerunLoopOptPass().apply(
            program, o3_setting().with_values(frerun_loop_opt=False), stats
        )
        assert stats["loop.invariants_hoisted"] == 0

    def test_hoisted_instruction_loses_invariant_tag(self):
        program = self._invariant_program(chain=1)
        LoopInvariantMotionPass().apply(program, o3_setting(), PassStats())
        pre = program.functions["main"].blocks["pre"]
        hoisted = [insn for insn in pre.instructions if insn.expr == "inv"]
        assert hoisted and not hoisted[0].has_tag(TAG_INVARIANT)


class TestUnswitch:
    def test_unswitch_doubles_loop_code(self):
        program = _guarded_loop_program()
        before = program.size_insns
        loop_insns_before = sum(
            len(program.functions["main"].blocks[label].instructions)
            for label in program.functions["main"].loops[0].blocks
        )
        stats = PassStats()
        UnswitchLoopsPass().apply(program, o3_setting(), stats)
        assert stats["unswitch.loops"] == 1
        growth = program.size_insns - before
        # The whole body was cloned (minus the removed branch, plus the
        # switch test and branch in the preheader).
        assert growth >= loop_insns_before - 2

    def test_unswitch_removes_hot_branch(self):
        program = _guarded_loop_program()
        stats = PassStats()
        UnswitchLoopsPass().apply(program, o3_setting(), stats)
        assert stats["unswitch.branches_removed"] == 1
        hdr = program.functions["main"].blocks["hdr"]
        assert hdr.terminator is None or hdr.terminator.opcode is not Opcode.BR
        assert hdr.taken_prob == 0.0
        assert not hdr.invariant_branch

    def test_clone_blocks_never_execute(self):
        program = _guarded_loop_program()
        UnswitchLoopsPass().apply(program, o3_setting(), PassStats())
        clones = [
            block
            for label, block in program.functions["main"].blocks.items()
            if label.endswith(".us")
        ]
        assert clones
        assert all(block.exec_count == 0.0 for block in clones)

    def test_clones_join_loop_footprint(self):
        program = _guarded_loop_program()
        UnswitchLoopsPass().apply(program, o3_setting(), PassStats())
        loop = program.functions["main"].loops[0]
        assert any(label.endswith(".us") for label in loop.blocks)

    def test_preheader_gains_switch_branch(self):
        program = _guarded_loop_program()
        UnswitchLoopsPass().apply(program, o3_setting(), PassStats())
        pre = program.functions["main"].blocks["pre"]
        assert pre.terminator is not None
        assert pre.terminator.opcode is Opcode.BR
        assert len(pre.successors) == 2

    def test_disabled_flag_is_noop(self):
        program = _guarded_loop_program()
        before = program.size_insns
        UnswitchLoopsPass().apply(
            program, o3_setting().with_values(funswitch_loops=False), PassStats()
        )
        assert program.size_insns == before

    def test_size_guard(self):
        program = _guarded_loop_program()
        guarded = program.functions["main"].blocks["guarded"]
        guarded.instructions = [
            Instruction(opcode=Opcode.ADD, expr=f"big{i}")
            for i in range(UnswitchLoopsPass.MAX_BODY_INSNS + 1)
        ]
        before = program.size_insns
        UnswitchLoopsPass().apply(program, o3_setting(), PassStats())
        assert program.size_insns == before

    def test_validates_after_unswitch(self):
        program = _guarded_loop_program()
        UnswitchLoopsPass().apply(program, o3_setting(), PassStats())
        program.validate()


class TestStrengthReduce:
    def _mul_program(self):
        program = simple_loop_program()
        body = program.functions["main"].blocks["body"]
        body.instructions.insert(
            0,
            Instruction(
                opcode=Opcode.MUL, expr="ind", tags=frozenset({TAG_INDUCTION})
            ),
        )
        body.instructions.insert(
            1,
            Instruction(opcode=Opcode.ADD, expr="use", deps=((1, "mac"),)),
        )
        return program, body

    def test_converts_induction_mul_to_add(self):
        program, body = self._mul_program()
        stats = PassStats()
        StrengthReducePass().apply(program, o3_setting(), stats)
        assert stats["strength_reduce.converted"] == 1
        assert body.instructions[0].opcode is Opcode.ADD
        assert body.instructions[0].latency == 1

    def test_consumer_dep_kind_retagged(self):
        program, body = self._mul_program()
        StrengthReducePass().apply(program, o3_setting(), PassStats())
        assert body.instructions[1].deps == ((1, "alu"),)

    def test_non_induction_mul_untouched(self):
        program = simple_loop_program()
        body = program.functions["main"].blocks["body"]
        body.instructions.insert(0, Instruction(opcode=Opcode.MUL, expr="m"))
        StrengthReducePass().apply(program, o3_setting(), PassStats())
        assert body.instructions[0].opcode is Opcode.MUL

    def test_disabled_flag(self):
        program, body = self._mul_program()
        StrengthReducePass().apply(
            program, o3_setting().with_values(fstrength_reduce=False), PassStats()
        )
        assert body.instructions[0].opcode is Opcode.MUL
