"""Tests for the prediction service: endpoints, HTTP layer, job streaming."""

from __future__ import annotations

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Session
from repro.machine.xscale import xscale
from repro.service import (
    PredictionService,
    ServiceError,
    canonical_json,
    make_server,
)
from repro.sim.counters import COUNTER_NAMES


@pytest.fixture(scope="module")
def deployment(tmp_path_factory, tiny_data):
    """A tiny-trained, promoted registry plus the session serving it."""
    cache = tmp_path_factory.mktemp("service-cache")
    trainer = Session("tiny", cache_dir=cache)
    trainer.models.fit(tiny_data.training)
    trainer.models.register(promote=True)
    return Session("tiny", cache_dir=cache, use_disk_cache=False)


@pytest.fixture(scope="module")
def service(deployment):
    return PredictionService(deployment)


@pytest.fixture(scope="module")
def server(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read().decode()


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, response.read().decode()


class TestServiceCore:
    def test_health_names_the_promoted_model(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["model"]["version"] == 1
        assert health["model"]["fingerprint"] is not None

    def test_predict_needs_program_or_counters(self, service):
        with pytest.raises(ServiceError, match="'program' or 'counters'"):
            service.predict({"machine": dataclasses.asdict(xscale())})

    def test_predict_unknown_program_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.predict(
                {"program": "nope", "machine": dataclasses.asdict(xscale())}
            )
        assert excinfo.value.status == 404

    def test_predict_bad_machine_is_400(self, service):
        with pytest.raises(ServiceError, match="bad machine"):
            service.predict({"program": "sha", "machine": {"bogus_field": 1}})

    def test_predict_caps_top(self, service):
        """'top' is bounded: the flag space is ~4e14 settings, so an
        uncapped request could enumerate effectively forever."""
        machine = dataclasses.asdict(xscale())
        for bad in (0, -1, 10**9, "5"):
            with pytest.raises(ServiceError, match="'top' must be"):
                service.predict(
                    {"program": "sha", "machine": machine, "top": bad}
                )

    def test_predict_from_counters_matches_program_flow(self, service, deployment):
        machine = xscale()
        by_program = service.predict(
            {"program": "sha", "machine": dataclasses.asdict(machine), "top": 3}
        )
        profile = deployment.eval.evaluate("sha", machine)
        by_counters = service.predict(
            {
                "counters": dict(zip(COUNTER_NAMES, profile.counters.vector())),
                "machine": dataclasses.asdict(machine),
                "top": 3,
                "program": "sha",
            }
        )
        assert by_program["settings"] == by_counters["settings"]

    def test_no_promoted_model_is_503(self, tmp_path):
        bare = PredictionService(
            Session("tiny", cache_dir=tmp_path, use_disk_cache=False)
        )
        with pytest.raises(ServiceError) as excinfo:
            bare.predict({"program": "sha", "machine": dataclasses.asdict(xscale())})
        assert excinfo.value.status == 503

    def test_evaluate_round_trips_a_setting(self, service, deployment):
        machine = xscale()
        predicted = service.predict(
            {"program": "sha", "machine": dataclasses.asdict(machine), "top": 1}
        )
        indices = predicted["settings"][0]["indices"]
        evaluated = service.evaluate(
            {
                "program": "sha",
                "machine": dataclasses.asdict(machine),
                "setting": {"indices": indices},
            }
        )
        assert evaluated["runtime_seconds"] > 0
        assert set(evaluated["counters"]) == set(COUNTER_NAMES)

    def test_promotion_takes_effect_without_restart(self, service, deployment):
        machine = dataclasses.asdict(xscale())
        before = service.predict({"program": "sha", "machine": machine})
        registry = service.registry
        # Register a deliberately different model (k=1) and promote it.
        trainer = Session("tiny", use_disk_cache=False)
        trainer.models.fit(k=1)
        second = trainer.models.register(registry=registry, promote=True)
        after = service.predict({"program": "sha", "machine": machine})
        assert after["model"]["version"] == second.version
        assert after["model"]["digest"] != before["model"]["digest"]
        registry.rollback()
        rolled = service.predict({"program": "sha", "machine": machine})
        assert rolled["model"] == before["model"]
        assert rolled["settings"] == before["settings"]


class TestHttpLayer:
    def test_healthz(self, base_url):
        status, body = _get(base_url + "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_unknown_route_is_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url + "/nope")
        assert excinfo.value.code == 404

    def test_bad_json_body_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/predict", data=b"not json {"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def _raw_post(self, base_url: str, content_length: str, body: bytes = b""):
        """POST /predict with an explicit (possibly malformed) Content-Length
        — urllib would refuse to send one, so drop to http.client."""
        import http.client
        from urllib.parse import urlsplit

        host = urlsplit(base_url).netloc
        connection = http.client.HTTPConnection(host, timeout=30)
        try:
            connection.putrequest("POST", "/predict")
            connection.putheader("Content-Length", content_length)
            connection.endheaders()
            if body:
                connection.send(body)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    @pytest.mark.parametrize("header", ["banana", "12abc", "1.5", "-5"])
    def test_malformed_content_length_is_400(self, base_url, header):
        """Regression: a non-integer or negative Content-Length used to
        escape as ValueError and surface as a 500 internal error."""
        status, body = self._raw_post(base_url, header)
        assert status == 400
        assert b"bad Content-Length" in body

    def test_oversized_content_length_is_413(self, base_url):
        from repro.service.server import MAX_BODY_BYTES

        status, body = self._raw_post(base_url, str(MAX_BODY_BYTES + 1))
        assert status == 413
        assert b"too large" in body

    def test_empty_content_length_still_means_no_body(self, base_url):
        """The pre-fix behaviour for an absent/empty header is preserved:
        an empty body parses as {} and fails validation, not framing."""
        status, body = self._raw_post(base_url, "")
        assert status == 400
        assert b"Content-Length" not in body

    def test_predict_http_is_bit_identical_to_facet(
        self, base_url, deployment
    ):
        """The ISSUE acceptance check: POST /predict == in-process facet."""
        machine = deployment.machines(1, seed=99)[0]
        payload = {
            "program": "sha",
            "machine": dataclasses.asdict(machine),
            "top": 5,
        }
        status, body = _post(base_url + "/predict", payload)
        assert status == 200

        # Rebuild the exact expected bytes from a *fresh* session loading
        # the same promoted registry model through the facets.
        fresh = Session("tiny", use_disk_cache=False)
        entry = fresh.models.load_registered(
            registry=deployment.models.registry()
        )
        ranked = fresh.models.rank("sha", machine, top=5)
        expected = canonical_json(
            {
                "model": {
                    "version": entry.version,
                    "digest": entry.digest,
                    "fingerprint": entry.fingerprint,
                },
                **ranked.payload(),
            }
        )
        assert body == expected
        # And rank 1 is what models.predict would deploy.
        predicted = fresh.models.predict("sha", machine, evaluate=False)
        assert json.loads(body)["settings"][0]["indices"] == list(
            predicted.setting.as_indices()
        )

    def test_metrics_accumulate(self, base_url):
        _get(base_url + "/healthz")
        status, body = _get(base_url + "/metrics")
        assert status == 200
        metrics = json.loads(body)
        health = metrics["endpoints"]["/healthz"]
        assert health["count"] >= 1
        latency = health["latency_ms"]
        assert 0 <= latency["p50"] <= latency["p90"] <= latency["p99"] <= latency["max"]

    def test_job_streams_fold_events_before_completion(self, base_url):
        """The ISSUE acceptance check: a capped run_protocol job streams
        >= 1 fold-completion event over /jobs/<id>/events before it ends."""
        status, body = _post(
            base_url + "/jobs",
            {"scale": "tiny", "only": "headline", "max_folds": 2},
        )
        assert status == 202
        job = json.loads(body)
        assert job["state"] in ("queued", "running")

        events = []
        with urllib.request.urlopen(
            f"{base_url}/jobs/{job['id']}/events", timeout=300
        ) as stream:
            for line in stream:
                events.append(json.loads(line))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "started"
        assert kinds[-1] == "complete"
        folds = [event for event in events if event["event"] == "fold"]
        assert len(folds) >= 1  # streamed before the job finished
        assert folds[0]["completed"] >= 1
        assert folds[0]["total"] > 0
        assert "--" in folds[0]["fold"]  # variant--program stem

        # A late joiner replays the full history from the job snapshot.
        status, body = _get(f"{base_url}/jobs/{job['id']}")
        snapshot = json.loads(body)
        assert snapshot["state"] == "done"
        assert snapshot["events"] == len(events)

    def test_finished_jobs_are_pruned_beyond_cap(self):
        """A long-running server must not hoard every finished job's
        event log; only the newest KEEP_FINISHED terminal jobs survive."""
        from repro.service.jobs import JobManager

        manager = JobManager(lambda job: {})
        manager.KEEP_FINISHED = 3
        jobs = [manager.submit({"n": n}) for n in range(6)]
        for job in jobs:
            for _ in job.events(timeout=30):
                pass
        # One more submission triggers the prune of the oldest finished.
        manager.submit({"n": 99})
        retained = {snapshot["id"] for snapshot in manager.list()}
        assert jobs[0].id not in retained
        assert jobs[-1].id in retained
        assert len(retained) <= manager.KEEP_FINISHED + 1  # + the live one

    def test_job_listing_and_missing_job(self, base_url):
        status, body = _get(base_url + "/jobs")
        assert status == 200
        assert isinstance(json.loads(body)["jobs"], list)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base_url + "/jobs/job-9999/events")
        assert excinfo.value.code == 404


class TestBatchPredict:
    """The ``items`` form of /predict: many queries, one vectorised pass."""

    def test_batch_items_match_single_requests_bit_for_bit(self, service):
        machines = [
            dataclasses.asdict(m)
            for m in Session("tiny", use_disk_cache=False).machines(2, seed=77)
        ]
        items = [
            {"program": "sha", "machine": machines[0], "top": 3},
            {"program": "crc", "machine": machines[1], "top": 2},
            {"program": "sha", "machine": machines[1], "top": 3},
        ]
        batch = service.predict({"items": items})
        singles = [service.predict(item) for item in items]
        assert len(batch["results"]) == len(items)
        for got, single in zip(batch["results"], singles):
            want = {key: value for key, value in single.items() if key != "model"}
            assert canonical_json(got) == canonical_json(want)
        assert batch["model"] == singles[0]["model"]

    def test_batch_mixes_counters_and_program_items(self, service, deployment):
        machine = xscale()
        profile = deployment.eval.evaluate("sha", machine)
        items = [
            {
                "counters": dict(zip(COUNTER_NAMES, profile.counters.vector())),
                "machine": dataclasses.asdict(machine),
                "top": 3,
                "program": "sha",
            },
            {"program": "sha", "machine": dataclasses.asdict(machine), "top": 3},
        ]
        batch = service.predict({"items": items})
        assert batch["results"][0]["settings"] == batch["results"][1]["settings"]
        assert batch["results"][0]["program"] == "sha"

    def test_batch_default_top_and_per_item_override(self, service):
        machine = dataclasses.asdict(xscale())
        batch = service.predict(
            {
                "top": 2,
                "items": [
                    {"program": "sha", "machine": machine},
                    {"program": "sha", "machine": machine, "top": 4},
                ],
            }
        )
        assert len(batch["results"][0]["settings"]) == 2
        assert len(batch["results"][1]["settings"]) == 4

    def test_batch_item_errors_name_the_item(self, service):
        machine = dataclasses.asdict(xscale())
        with pytest.raises(ServiceError, match=r"items\[1\]"):
            service.predict(
                {
                    "items": [
                        {"program": "sha", "machine": machine},
                        {"machine": machine},
                    ]
                }
            )
        with pytest.raises(ServiceError, match=r"items\[0\].*unknown program") as exc:
            service.predict({"items": [{"program": "nope", "machine": machine}]})
        assert exc.value.status == 404

    def test_batch_rejects_bad_shapes(self, service):
        with pytest.raises(ServiceError, match="non-empty array"):
            service.predict({"items": []})
        with pytest.raises(ServiceError, match="non-empty array"):
            service.predict({"items": "sha"})
        from repro.service.service import MAX_BATCH_ITEMS

        machine = dataclasses.asdict(xscale())
        too_many = [{"program": "sha", "machine": machine}] * (MAX_BATCH_ITEMS + 1)
        with pytest.raises(ServiceError, match="batch too large"):
            service.predict({"items": too_many})

    def test_batch_over_http_matches_in_process(self, base_url, service):
        machine = dataclasses.asdict(xscale())
        payload = {
            "items": [
                {"program": "sha", "machine": machine, "top": 2},
                {"program": "crc", "machine": machine, "top": 2},
            ]
        }
        status, body = _post(base_url + "/predict", payload)
        assert status == 200
        assert body == canonical_json(service.predict(payload))
