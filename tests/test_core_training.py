"""Tests for training-set generation, cross-validation and MI analyses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import o3_setting
from repro.core.crossval import CrossValResult, PairOutcome, leave_one_out
from repro.core.mutual_information import (
    entropy,
    feature_best_flag_mi,
    flag_speedup_mi,
    hinton_feature_columns,
    hinton_rows,
    mutual_information,
    normalised_mutual_information,
    quartile_bins,
)
from repro.core.predictor import OptimisationPredictor
from repro.sim.counters import COUNTER_NAMES


class TestTrainingSet:
    def test_shapes(self, tiny_data):
        training = tiny_data.training
        P = len(training.program_names)
        S = len(training.settings)
        M = len(training.machines)
        assert training.runtimes.shape == (P, S, M)
        assert training.o3_runtimes.shape == (P, M)
        assert training.counters.shape == (P, M, len(COUNTER_NAMES))

    def test_runtimes_positive(self, tiny_data):
        assert np.all(tiny_data.training.runtimes > 0)
        assert np.all(tiny_data.training.o3_runtimes > 0)

    def test_speedups_shape_and_sanity(self, tiny_data):
        speedups = tiny_data.training.speedups()
        assert speedups.shape == tiny_data.training.runtimes.shape
        assert 0.2 < speedups.mean() < 2.0

    def test_best_runtime_is_minimum(self, tiny_data):
        training = tiny_data.training
        assert training.best_runtime(0, 0) == pytest.approx(
            training.runtimes[0, :, 0].min()
        )

    def test_best_setting_achieves_best_runtime(self, tiny_data):
        training = tiny_data.training
        setting = training.best_setting(2, 1)
        index = training.settings.index(setting)
        assert training.runtimes[2, index, 1] == pytest.approx(
            training.best_runtime(2, 1)
        )

    def test_good_settings_size(self, tiny_data):
        training = tiny_data.training
        good = training.good_settings(0, 0, quantile=0.25)
        assert len(good) == round(len(training.settings) * 0.25)

    def test_pair_distribution_mode_is_good(self, tiny_data):
        training = tiny_data.training
        distribution = training.pair_distribution(1, 1, quantile=0.25)
        for theta in distribution.theta:
            assert theta.sum() == pytest.approx(1.0)

    def test_counters_match_fresh_simulation(self, tiny_data):
        from repro.sim.analytic import simulate_analytic

        training = tiny_data.training
        program = tiny_data.programs[0]
        binary = tiny_data.compiler.compile(program, o3_setting())
        result = simulate_analytic(binary, training.machines[0])
        assert np.allclose(
            training.counters[0, 0, :], np.array(result.counters.vector())
        )


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def cv_result(self, tiny_data):
        predictor = OptimisationPredictor()
        return leave_one_out(
            tiny_data.training, tiny_data.programs, compiler=tiny_data.compiler,
            predictor=predictor,
        )

    def test_one_outcome_per_pair(self, tiny_data, cv_result):
        expected = len(tiny_data.training.program_names) * len(
            tiny_data.training.machines
        )
        assert len(cv_result.outcomes) == expected

    def test_speedup_definitions(self, cv_result):
        outcome = cv_result.outcomes[0]
        assert outcome.speedup == pytest.approx(
            outcome.o3_runtime / outcome.predicted_runtime
        )
        assert outcome.best_speedup == pytest.approx(
            outcome.o3_runtime / outcome.best_runtime
        )

    def test_fraction_of_best_bounds(self, cv_result):
        for outcome in cv_result.outcomes:
            assert outcome.fraction_of_best >= 0.0

    def test_aggregates_finite(self, cv_result):
        assert np.isfinite(cv_result.mean_speedup())
        assert np.isfinite(cv_result.mean_best_speedup())
        assert -1.0 <= cv_result.correlation_with_best() <= 1.0

    def test_by_program_partition(self, tiny_data, cv_result):
        grouped = cv_result.by_program()
        assert set(grouped) == set(tiny_data.training.program_names)
        assert sum(len(group) for group in grouped.values()) == len(
            cv_result.outcomes
        )

    def test_by_machine_partition(self, tiny_data, cv_result):
        grouped = cv_result.by_machine()
        assert set(grouped) == set(tiny_data.training.machines)

    def test_model_beats_random_floor(self, tiny_data, cv_result):
        # The model must do clearly better than the average random setting.
        random_mean = tiny_data.training.speedups().mean()
        assert cv_result.mean_speedup() > random_mean

    def test_empty_result_helpers(self):
        result = CrossValResult()
        assert result.outcomes == []


class TestMutualInformation:
    def test_entropy_uniform(self):
        assert entropy([0, 1, 2, 3]) == pytest.approx(np.log(4))

    def test_entropy_constant(self):
        assert entropy([7] * 10) == 0.0

    def test_mi_of_identical_is_entropy(self):
        xs = [0, 1, 0, 1, 2, 2]
        assert mutual_information(xs, xs) == pytest.approx(entropy(xs))

    def test_mi_of_independent_near_zero(self):
        xs = [0, 1] * 50
        ys = [0] * 50 + [1] * 50
        assert mutual_information(xs, ys) == pytest.approx(0.0, abs=1e-9)

    def test_mi_requires_paired(self):
        with pytest.raises(ValueError):
            mutual_information([1, 2], [1])

    def test_nmi_bounds(self):
        xs = [0, 1, 0, 1, 1, 0, 1, 0]
        ys = [0, 1, 0, 1, 0, 1, 0, 1]
        value = normalised_mutual_information(xs, ys)
        assert 0.0 <= value <= 1.0

    def test_nmi_constant_is_zero(self):
        assert normalised_mutual_information([1] * 5, [0, 1, 0, 1, 0]) == 0.0

    @given(
        xs=st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_mi_nonnegative_and_bounded(self, xs):
        ys = list(reversed(xs))
        value = mutual_information(xs, ys)
        assert value >= 0.0
        assert value <= min(entropy(xs), entropy(ys)) + 1e-9

    def test_quartile_bins_four_levels(self):
        values = np.arange(100.0)
        bins = quartile_bins(values)
        assert set(bins) == {0, 1, 2, 3}

    def test_flag_speedup_matrix_shape(self, tiny_data):
        matrix = flag_speedup_mi(tiny_data.training)
        assert matrix.shape == (39, len(tiny_data.training.program_names))
        assert np.all(matrix >= 0.0)

    def test_feature_flag_matrix_shape(self, tiny_data):
        matrix = feature_best_flag_mi(tiny_data.training)
        assert matrix.shape == (39, 19)
        assert np.all(matrix >= 0.0)

    def test_hinton_labels(self, tiny_data):
        assert len(hinton_rows(tiny_data.training)) == 39
        assert len(hinton_feature_columns(tiny_data.training)) == 19
