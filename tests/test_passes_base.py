"""Tests for the pass machinery: dependence-preserving delete/insert."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import BasicBlock, Instruction, Opcode
from repro.compiler.passes.base import (
    delete_instructions,
    insert_instructions,
    remove_tagged,
)


def block_with_chain(length: int = 6) -> BasicBlock:
    """a chain: each instruction depends on its immediate predecessor."""
    instructions = [Instruction(opcode=Opcode.ADD, expr="i0")]
    for index in range(1, length):
        instructions.append(
            Instruction(opcode=Opcode.ADD, expr=f"i{index}", deps=((1, "alu"),))
        )
    return BasicBlock("b", instructions)


class TestDelete:
    def test_returns_removed_count(self):
        block = block_with_chain(5)
        assert delete_instructions(block, [1, 3]) == 2
        assert len(block.instructions) == 3

    def test_no_indices_is_noop(self):
        block = block_with_chain(4)
        before = list(block.instructions)
        assert delete_instructions(block, []) == 0
        assert block.instructions == before

    def test_consumer_of_deleted_producer_drops_edge(self):
        block = block_with_chain(3)
        delete_instructions(block, [1])
        # instruction 2 depended on 1; the edge disappears.
        assert block.instructions[1].deps == ()

    def test_crossing_edges_shrink(self):
        instructions = [
            Instruction(opcode=Opcode.ADD, expr="a"),
            Instruction(opcode=Opcode.MOV, expr="b"),
            Instruction(opcode=Opcode.ADD, expr="c", deps=((2, "alu"),)),
        ]
        block = BasicBlock("b", instructions)
        delete_instructions(block, [1])
        # c's producer a is now adjacent: distance 2 -> 1.
        assert block.instructions[1].deps == ((1, "alu"),)

    def test_cross_block_edges_keep_reach(self):
        instructions = [
            Instruction(opcode=Opcode.MOV, expr="a"),
            Instruction(opcode=Opcode.ADD, expr="b", deps=((4, "load"),)),
        ]
        block = BasicBlock("b", instructions)
        delete_instructions(block, [0])
        # b is now at index 0; its virtual producer was at -3 and stays there.
        assert block.instructions[0].deps == ((3, "load"),)

    @given(
        length=st.integers(min_value=2, max_value=20),
        doomed=st.sets(st.integers(min_value=0, max_value=19)),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_remaining_deps_valid(self, length, doomed):
        block = block_with_chain(length)
        delete_instructions(block, {index for index in doomed if index < length})
        for index, insn in enumerate(block.instructions):
            for distance, _ in insn.deps:
                assert distance >= 1


class TestInsert:
    def test_insert_stretches_crossing_edges(self):
        block = block_with_chain(3)
        spill = Instruction(opcode=Opcode.STORE, region="stack")
        insert_instructions(block, 1, [spill])
        # Old index 1 (now 2) depended on index 0 at distance 1 -> 2 now.
        assert block.instructions[2].deps == ((2, "alu"),)

    def test_insert_does_not_touch_inner_edges(self):
        block = block_with_chain(4)
        spill = Instruction(opcode=Opcode.STORE, region="stack")
        insert_instructions(block, 0, [spill])
        # All producer/consumer pairs sit after the insertion point.
        for insn in block.instructions[2:]:
            assert insn.deps == ((1, "alu"),)

    def test_empty_insert_is_noop(self):
        block = block_with_chain(3)
        before = [insn.expr for insn in block.instructions]
        insert_instructions(block, 1, [])
        assert [insn.expr for insn in block.instructions] == before

    def test_insert_then_delete_roundtrip_length(self):
        block = block_with_chain(5)
        spills = [
            Instruction(opcode=Opcode.STORE, region="stack"),
            Instruction(opcode=Opcode.LOAD, region="stack"),
        ]
        insert_instructions(block, 2, spills)
        assert len(block.instructions) == 7
        delete_instructions(block, [2, 3])
        assert len(block.instructions) == 5
        # The original chain's dependences survive the round trip.
        for insn in block.instructions[1:]:
            assert insn.deps == ((1, "alu"),)


class TestRemoveTagged:
    def test_removes_only_tagged(self):
        instructions = [
            Instruction(opcode=Opcode.ADD, expr="a"),
            Instruction(
                opcode=Opcode.MOV, expr="b", tags=frozenset({"peephole"})
            ),
            Instruction(opcode=Opcode.ADD, expr="c"),
        ]
        block = BasicBlock("b", instructions)
        assert remove_tagged(block, "peephole") == 1
        assert [insn.expr for insn in block.instructions] == ["a", "c"]

    def test_predicate_filters(self):
        instructions = [
            Instruction(
                opcode=Opcode.MOV, expr="x", tags=frozenset({"peephole"})
            ),
            Instruction(
                opcode=Opcode.ADD, expr="y", tags=frozenset({"peephole"})
            ),
        ]
        block = BasicBlock("b", instructions)
        removed = remove_tagged(
            block, "peephole", predicate=lambda insn: insn.opcode is Opcode.MOV
        )
        assert removed == 1
        assert block.instructions[0].expr == "y"
