"""Tests for the MiBench stand-in generator and specs."""

import pytest

from repro.compiler.ir import (
    Opcode,
    TAG_AFTER_STORE,
    TAG_INVARIANT,
    TAG_LOCAL_REDUNDANT,
    TAG_MERGEABLE_TAIL,
)
from repro.programs import (
    AccessSpec,
    CalleeSpec,
    LoopSpec,
    ProgramSpec,
    RegionSpec,
    build_program,
    mibench_names,
    mibench_program,
    mibench_spec,
)
from repro.programs.mibench import DYN


def _minimal_spec(**loop_overrides) -> ProgramSpec:
    loop_args = dict(
        trip_count=64.0,
        dyn_insns=1e6,
        body_blocks=2,
        block_insns=10,
        accesses=(AccessSpec("buf", loads_per_iter=1, stride=4),),
    )
    loop_args.update(loop_overrides)
    return ProgramSpec(
        name="mini",
        seed=1,
        regions=(RegionSpec("buf", 4096, "stream"),),
        loops=(LoopSpec("main", **loop_args),),
    )


class TestSpecValidation:
    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError, match="region"):
            ProgramSpec(
                name="bad",
                seed=1,
                loops=(
                    LoopSpec(
                        "l",
                        trip_count=4.0,
                        dyn_insns=1e5,
                        accesses=(AccessSpec("ghost", loads_per_iter=1),),
                    ),
                ),
            )

    def test_unknown_callee_rejected(self):
        with pytest.raises(ValueError, match="callee"):
            ProgramSpec(
                name="bad",
                seed=1,
                loops=(
                    LoopSpec("l", trip_count=4.0, dyn_insns=1e5, calls=("ghost",)),
                ),
            )

    def test_unknown_sibling_target_rejected(self):
        with pytest.raises(ValueError, match="sibling"):
            ProgramSpec(
                name="bad",
                seed=1,
                loops=(LoopSpec("l", trip_count=4.0, dyn_insns=1e5),),
                callees=(CalleeSpec("f", body_insns=4, sibling_target="ghost"),),
            )

    def test_needs_a_loop(self):
        with pytest.raises(ValueError, match="loop"):
            ProgramSpec(name="bad", seed=1, loops=())

    def test_total_dyn_includes_nested(self):
        spec = ProgramSpec(
            name="n",
            seed=1,
            loops=(
                LoopSpec(
                    "outer",
                    trip_count=4.0,
                    dyn_insns=1e5,
                    inner=LoopSpec("inner", trip_count=8.0, dyn_insns=9e5),
                ),
            ),
        )
        assert spec.total_dyn_insns == pytest.approx(1e6)


class TestGenerator:
    def test_deterministic(self):
        one = build_program(_minimal_spec())
        two = build_program(_minimal_spec())
        assert one.size_insns == two.size_insns
        assert one.dynamic_insns == pytest.approx(two.dynamic_insns)
        for label, block in one.functions["main"].blocks.items():
            twin = two.functions["main"].blocks[label]
            assert [insn.opcode for insn in block.instructions] == [
                insn.opcode for insn in twin.instructions
            ]

    def test_dynamic_budget_respected(self):
        program = build_program(_minimal_spec())
        assert program.dynamic_insns == pytest.approx(1e6, rel=0.25)

    def test_loop_shape_convention(self):
        program = build_program(_minimal_spec())
        function = program.functions["main"]
        loop = function.loops[0]
        members = [label for label in function.layout if label in set(loop.blocks)]
        assert function.blocks[members[0]].is_loop_header
        latch = function.blocks[members[-1]]
        assert latch.terminator is not None
        assert loop.header in latch.successors

    def test_preheader_exists(self):
        program = build_program(_minimal_spec())
        function = program.functions["main"]
        loop = function.loops[0]
        preheaders = [
            label
            for label in function.layout
            if label not in set(loop.blocks)
            and loop.header in function.blocks[label].successors
        ]
        assert len(preheaders) == 1

    def test_memory_accesses_emitted(self):
        program = build_program(_minimal_spec())
        loads = [
            insn
            for function in program.functions.values()
            for block in function.blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.LOAD and insn.region == "buf"
        ]
        assert loads

    def test_redundancy_quota_proportional(self):
        spec = _minimal_spec(redundancy_local=0.2, block_insns=40)
        program = build_program(spec)
        tagged = sum(
            1
            for function in program.functions.values()
            for block in function.blocks.values()
            for insn in block.instructions
            if insn.has_tag(TAG_LOCAL_REDUNDANT)
        )
        total = program.size_insns
        assert 0.05 * total < tagged < 0.4 * total

    def test_invariant_load_quota_deterministic(self):
        spec = _minimal_spec(
            invariant_load_rate=0.5,
            accesses=(AccessSpec("buf", loads_per_iter=4, stride=4),),
        )
        program = build_program(spec)
        invariant = sum(
            1
            for block in program.functions["main"].blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.LOAD and insn.has_tag(TAG_INVARIANT)
        )
        plain = sum(
            1
            for block in program.functions["main"].blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.LOAD and insn.region == "buf"
        )
        assert invariant == pytest.approx(plain / 2, abs=1)

    def test_after_store_loads_have_zero_stride(self):
        spec = _minimal_spec(
            after_store_rate=1.0,
            accesses=(
                AccessSpec("buf", loads_per_iter=2, stores_per_iter=2, stride=4),
            ),
        )
        program = build_program(spec)
        after_store = [
            insn
            for block in program.functions["main"].blocks.values()
            for insn in block.instructions
            if insn.has_tag(TAG_AFTER_STORE)
        ]
        assert after_store
        assert all(insn.stride == 0 for insn in after_store)

    def test_calls_emitted_once_per_iteration(self):
        spec = ProgramSpec(
            name="c",
            seed=2,
            callees=(CalleeSpec("helper", body_insns=8),),
            loops=(
                LoopSpec("l", trip_count=16.0, dyn_insns=1e5, calls=("helper",)),
            ),
        )
        program = build_program(spec)
        calls = [
            insn
            for block in program.functions["main"].blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.CALL
        ]
        assert len(calls) == 1
        helper = program.functions["helper"]
        loop = program.functions["main"].loops[0]
        assert helper.entry_count == pytest.approx(loop.iterations, rel=0.01)

    def test_sibling_chain_counts_propagate(self):
        spec = ProgramSpec(
            name="s",
            seed=3,
            callees=(
                CalleeSpec("inner", body_insns=6),
                CalleeSpec("outer", body_insns=6, sibling_target="inner"),
            ),
            loops=(
                LoopSpec("l", trip_count=16.0, dyn_insns=1e5, calls=("outer",)),
            ),
        )
        program = build_program(spec)
        outer = program.functions["outer"]
        inner = program.functions["inner"]
        assert inner.entry_count == pytest.approx(outer.entry_count, rel=0.01)
        assert inner.entry_count > 0

    def test_nested_loop_profile(self):
        spec = ProgramSpec(
            name="n",
            seed=4,
            loops=(
                LoopSpec(
                    "outer",
                    trip_count=16.0,
                    dyn_insns=2e4,
                    body_blocks=2,
                    inner=LoopSpec(
                        "inner", trip_count=64.0, dyn_insns=9e5, body_blocks=1
                    ),
                ),
            ),
        )
        program = build_program(spec)
        function = program.functions["main"]
        outer = next(l for l in function.loops if l.header == "outer.hdr")
        inner = next(l for l in function.loops if l.header == "inner.hdr")
        assert inner.depth == 2
        assert inner.parent == "outer.hdr"
        # Inner loop entered once per outer iteration.
        assert inner.entries == pytest.approx(outer.iterations, rel=0.01)

    def test_mergeable_tails_share_group_key(self):
        spec = ProgramSpec(
            name="t",
            seed=5,
            loops=(
                LoopSpec("l", trip_count=16.0, dyn_insns=1e5, diamonds=1),
            ),
            mergeable_tails=((2, 4),),
        )
        program = build_program(spec)
        tails = [
            insn
            for block in program.functions["main"].blocks.values()
            for insn in block.instructions
            if insn.has_tag(TAG_MERGEABLE_TAIL)
        ]
        assert len(tails) == 8  # two copies of four instructions
        assert len({insn.expr for insn in tails}) == 1

    def test_duplicate_block_labels_rejected(self):
        spec = ProgramSpec(
            name="dup",
            seed=6,
            loops=(
                LoopSpec("same", trip_count=4.0, dyn_insns=1e4),
                LoopSpec("same", trip_count=4.0, dyn_insns=1e4),
            ),
        )
        with pytest.raises(ValueError, match="duplicate"):
            build_program(spec)


class TestMiBenchSuite:
    def test_thirty_five_programs(self):
        assert len(mibench_names()) == 35

    def test_figure4_order_preserved(self):
        names = mibench_names()
        assert names[0] == "qsort"
        assert names[-1] == "search"
        assert names[33] == "rijndael_e"

    def test_all_specs_unique_seeds(self):
        seeds = [mibench_spec(name).seed for name in mibench_names()]
        assert len(set(seeds)) == len(seeds)

    @pytest.mark.parametrize("name", mibench_names())
    def test_program_builds_and_validates(self, name):
        program = mibench_program(name)
        program.validate()
        assert program.dynamic_insns > 0.5 * DYN

    def test_programs_cached(self):
        assert mibench_program("sha") is mibench_program("sha")

    def test_rijndael_is_hand_unrolled(self):
        # Hot body big enough that max-unrolled-insns collapses the factor.
        spec = mibench_spec("rijndael_e")
        loop = spec.loops[0]
        assert loop.body_blocks * loop.block_insns > 400

    def test_crc_callee_exceeds_default_inline_budget(self):
        spec = mibench_spec("crc")
        assert spec.callees[0].body_insns > 90

    def test_search_is_unroll_friendly(self):
        spec = mibench_spec("search")
        loop = spec.loops[0]
        assert loop.block_insns <= 6
        assert loop.trip_count >= 1024
