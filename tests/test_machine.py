"""Tests for the microarchitecture space and the Cacti model."""

import math

import pytest

from repro.machine.cacti import (
    access_time_ns,
    cache_timing,
    dcache_timing,
    icache_timing,
    load_use_latency,
    read_energy_nj,
)
from repro.machine.params import (
    BASE_GRID,
    DESCRIPTOR_NAMES,
    EXTENDED_DESCRIPTOR_NAMES,
    MicroArch,
    MicroArchSpace,
)
from repro.machine.xscale import (
    xscale,
    xscale_small_both_caches,
    xscale_small_icache,
)


class TestGrids:
    def test_base_space_is_exactly_288000(self):
        assert MicroArchSpace().size() == 288_000

    def test_extended_space_is_ten_times_larger(self):
        assert MicroArchSpace(extended=True).size() == 2_880_000

    def test_grid_values_match_table2(self):
        assert BASE_GRID["il1_size"] == (4096, 8192, 16384, 32768, 65536, 131072)
        assert BASE_GRID["il1_assoc"] == (4, 8, 16, 32, 64)
        assert BASE_GRID["il1_block"] == (8, 16, 32, 64)
        assert BASE_GRID["btb_entries"] == (128, 256, 512, 1024, 2048)
        assert BASE_GRID["btb_assoc"] == (1, 2, 4, 8)

    def test_xscale_matches_table2_column(self):
        machine = xscale()
        assert machine.il1_size == 32 * 1024
        assert machine.il1_assoc == 32
        assert machine.il1_block == 32
        assert machine.dl1_size == 32 * 1024
        assert machine.btb_entries == 512
        assert machine.btb_assoc == 1
        assert machine.frequency_mhz == 400
        assert machine.issue_width == 1

    def test_figure1_variants(self):
        small_i = xscale_small_icache()
        assert small_i.il1_size == 4 * 1024
        assert small_i.dl1_size == 32 * 1024
        small_both = xscale_small_both_caches()
        assert small_both.il1_size == 4 * 1024
        assert small_both.dl1_size == 4 * 1024

    def test_off_grid_value_rejected(self):
        with pytest.raises(ValueError):
            MicroArch(
                il1_size=5000,
                il1_assoc=4,
                il1_block=32,
                dl1_size=32768,
                dl1_assoc=4,
                dl1_block=32,
                btb_entries=512,
                btb_assoc=1,
            )

    def test_derived_set_counts(self):
        machine = xscale()
        assert machine.il1_sets == 32768 // (32 * 32)
        assert machine.btb_sets == 512


class TestSampling:
    def test_sample_deterministic(self):
        space = MicroArchSpace()
        assert space.sample(20, seed=5) == space.sample(20, seed=5)

    def test_sample_distinct(self):
        machines = MicroArchSpace().sample(50, seed=1)
        assert len(set(machines)) == 50

    def test_sample_two_hundred_like_paper(self):
        machines = MicroArchSpace().sample(200, seed=42)
        assert len(machines) == 200
        # All parameters exercised somewhere in the sample.
        for name, values in BASE_GRID.items():
            seen = {getattr(machine, name) for machine in machines}
            assert len(seen) >= 3, f"{name} barely sampled"

    def test_oversampling_rejected(self):
        space = MicroArchSpace()
        with pytest.raises(ValueError):
            space.sample(space.size() + 1, seed=0)

    def test_neighbours_differ_in_one_parameter(self):
        machine = xscale()
        for neighbour in MicroArchSpace().neighbours(machine):
            differences = sum(
                1
                for name in BASE_GRID
                if getattr(neighbour, name) != getattr(machine, name)
            )
            assert differences == 1


class TestDescriptors:
    def test_base_descriptor_length(self):
        assert len(xscale().descriptor()) == len(DESCRIPTOR_NAMES) == 8

    def test_extended_descriptor_length(self):
        assert len(xscale().descriptor(extended=True)) == len(
            EXTENDED_DESCRIPTOR_NAMES
        ) == 10

    def test_descriptor_is_log2_scaled(self):
        machine = xscale()
        descriptor = machine.descriptor()
        assert descriptor[2] == pytest.approx(math.log2(32 * 1024))  # i_size

    def test_label_readable(self):
        assert xscale().label() == "i32K.32.32_d32K.32.32_b512.1_400x1"


class TestCactiModel:
    def test_access_time_monotone_in_size(self):
        small = access_time_ns(4096, 4, 32)
        large = access_time_ns(131072, 4, 32)
        assert large > small

    def test_access_time_monotone_in_assoc(self):
        low = access_time_ns(32768, 4, 32)
        high = access_time_ns(32768, 64, 32)
        assert high > low

    def test_energy_monotone_in_size_and_assoc(self):
        assert read_energy_nj(131072, 4, 32) > read_energy_nj(4096, 4, 32)
        assert read_energy_nj(32768, 64, 32) > read_energy_nj(32768, 4, 32)

    def test_xscale_load_use_latency_is_three(self):
        assert load_use_latency(xscale()) == 3

    def test_small_fast_cache_lower_latency(self):
        small = MicroArch(
            il1_size=4096,
            il1_assoc=4,
            il1_block=32,
            dl1_size=4096,
            dl1_assoc=4,
            dl1_block=32,
            btb_entries=512,
            btb_assoc=1,
        )
        assert load_use_latency(small) < load_use_latency(
            MicroArch(
                il1_size=4096,
                il1_assoc=4,
                il1_block=32,
                dl1_size=131072,
                dl1_assoc=64,
                dl1_block=64,
                btb_entries=512,
                btb_assoc=1,
            )
        )

    def test_miss_penalty_scales_with_frequency(self):
        slow = cache_timing(32768, 32, 32, frequency_mhz=200)
        fast = cache_timing(32768, 32, 32, frequency_mhz=600)
        assert fast.miss_penalty_cycles > slow.miss_penalty_cycles

    def test_miss_penalty_scales_with_block_size(self):
        small = cache_timing(32768, 32, 8, frequency_mhz=400)
        large = cache_timing(32768, 32, 64, frequency_mhz=400)
        assert large.miss_penalty_cycles > small.miss_penalty_cycles

    def test_icache_dcache_helpers_agree_with_direct_call(self):
        machine = xscale()
        assert icache_timing(machine) == cache_timing(
            machine.il1_size, machine.il1_assoc, machine.il1_block, 400
        )
        assert dcache_timing(machine) == cache_timing(
            machine.dl1_size, machine.dl1_assoc, machine.dl1_block, 400
        )
