"""Shared fixtures: small IR programs, compilers, and tiny experiment data."""

from __future__ import annotations

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
)
from repro.compiler.pipeline import Compiler
from repro.machine.xscale import xscale


def make_instruction(opcode=Opcode.ADD, **kwargs) -> Instruction:
    return Instruction(opcode=opcode, **kwargs)


def simple_loop_program(
    name: str = "p",
    body_insns: int = 8,
    trip_count: float = 100.0,
    entries: float = 10.0,
    region_size: int = 64 * 1024,
) -> Program:
    """A one-loop program: entry → pre → hdr → body → latch ⤴ → exit.

    The canonical loop shape the generator emits, small enough to reason
    about in tests.
    """
    instructions = [
        Instruction(opcode=Opcode.ADD, expr=f"{name}.b{i}") for i in range(body_insns)
    ]
    instructions.append(
        Instruction(opcode=Opcode.LOAD, expr=f"{name}.ld", region="data", stride=4)
    )
    iterations = trip_count * entries

    blocks = {
        "entry": BasicBlock(
            "entry",
            [Instruction(opcode=Opcode.MOV, expr=f"{name}.e0")],
            successors=["pre"],
            exec_count=1.0,
        ),
        "pre": BasicBlock(
            "pre",
            [Instruction(opcode=Opcode.MOV, expr=f"{name}.p0")],
            successors=["hdr"],
            exec_count=entries,
        ),
        "hdr": BasicBlock(
            "hdr",
            [Instruction(opcode=Opcode.ADD, expr=f"{name}.h0")],
            successors=["body"],
            exec_count=iterations,
            is_loop_header=True,
        ),
        "body": BasicBlock(
            "body",
            instructions,
            successors=["latch"],
            exec_count=iterations,
        ),
        "latch": BasicBlock(
            "latch",
            [
                Instruction(opcode=Opcode.CMP, expr=f"{name}.l0"),
                Instruction(opcode=Opcode.BR),
            ],
            successors=["exit", "hdr"],
            exec_count=iterations,
            taken_prob=1.0 - 1.0 / trip_count,
        ),
        "exit": BasicBlock(
            "exit",
            [Instruction(opcode=Opcode.RET)],
            successors=[],
            exec_count=entries,
        ),
    }
    function = Function(
        name="main",
        blocks=blocks,
        layout=["entry", "pre", "hdr", "body", "latch", "exit"],
        loops=[
            Loop(
                header="hdr",
                blocks=["hdr", "body", "latch"],
                trip_count=trip_count,
                entries=entries,
            )
        ],
        entry_count=1.0,
    )
    program = Program(
        name=name,
        functions={"main": function},
        entry="main",
        regions={
            "data": DataRegion("data", region_size, "stream"),
            "stack": DataRegion("stack", 4096, "stack"),
        },
    )
    program.validate()
    return program


@pytest.fixture
def loop_program() -> Program:
    return simple_loop_program()


@pytest.fixture
def compiler() -> Compiler:
    return Compiler()


@pytest.fixture
def o3():
    return o3_setting()


@pytest.fixture
def machine():
    return xscale()


@pytest.fixture(scope="session")
def tiny_data():
    """Session-cached TINY-scale experiment data (no disk cache)."""
    from repro.experiments.config import TINY
    from repro.experiments.dataset import load_or_build

    return load_or_build(TINY, use_disk_cache=False)


@pytest.fixture(scope="session")
def tiny_protocol(tiny_data):
    """Session-cached full TINY paper-protocol run (in-memory fold store).

    One complete `session.protocol.run` — every variant, every artifact —
    shared by the golden-protocol pins and the report tests.
    """
    from repro.api import Session

    session = Session("tiny", use_disk_cache=False)
    outcome = session.protocol.run()
    assert outcome.complete
    return outcome
