"""Property-based fuzzing of the program generator and the cache models."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import o3_setting
from repro.compiler.ir import Opcode
from repro.compiler.pipeline import Compiler
from repro.machine.params import BASE_GRID, MicroArch
from repro.machine.xscale import xscale
from repro.programs import AccessSpec, LoopSpec, ProgramSpec, RegionSpec, build_program
from repro.sim.analytic import simulate_analytic

loop_specs = st.builds(
    LoopSpec,
    name=st.just("fuzz"),
    trip_count=st.floats(min_value=2.0, max_value=10_000.0),
    dyn_insns=st.floats(min_value=1e4, max_value=1e7),
    body_blocks=st.integers(min_value=1, max_value=6),
    block_insns=st.integers(min_value=3, max_value=48),
    mix_mac=st.floats(min_value=0.0, max_value=0.5),
    mix_shift=st.floats(min_value=0.0, max_value=0.4),
    accesses=st.just(
        (AccessSpec("buf", loads_per_iter=2, stores_per_iter=1, stride=4),)
    ),
    carried_dep_latency=st.integers(min_value=0, max_value=3),
    ilp=st.floats(min_value=1.0, max_value=4.0),
    predictability=st.floats(min_value=0.5, max_value=1.0),
    diamonds=st.integers(min_value=0, max_value=2),
    diamond_taken=st.floats(min_value=0.05, max_value=0.95),
    invariant_branch=st.booleans(),
    redundancy_local=st.floats(min_value=0.0, max_value=0.2),
    redundancy_global=st.floats(min_value=0.0, max_value=0.2),
    invariant_load_rate=st.floats(min_value=0.0, max_value=0.4),
    after_store_rate=st.floats(min_value=0.0, max_value=0.4),
    induction_rate=st.floats(min_value=0.0, max_value=0.1),
    peephole_rate=st.floats(min_value=0.0, max_value=0.1),
)


def _spec(loop: LoopSpec, seed: int) -> ProgramSpec:
    return ProgramSpec(
        name="fuzzprog",
        seed=seed,
        regions=(RegionSpec("buf", 64 * 1024, "stream"),),
        loops=(loop,),
        cold_insns=40,
    )


class TestGeneratorFuzz:
    @given(loop=loop_specs, seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=50, deadline=None)
    def test_generated_programs_always_valid(self, loop, seed):
        program = build_program(_spec(loop, seed))
        program.validate()
        assert program.dynamic_insns > 0
        function = program.functions["main"]
        # Canonical loop shape: header first, latch (with back edge) last.
        emitted = function.loops[0]
        members = [
            label for label in function.layout if label in set(emitted.blocks)
        ]
        assert function.blocks[members[0]].is_loop_header
        latch = function.blocks[members[-1]]
        assert emitted.header in latch.successors

    @given(loop=loop_specs, seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_compile_at_o3(self, loop, seed):
        program = build_program(_spec(loop, seed))
        binary = Compiler(cache=False).compile(program, o3_setting())
        assert binary.dyn_insns > 0
        assert binary.loops

    @given(loop=loop_specs, seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=25, deadline=None)
    def test_dynamic_budget_order_of_magnitude(self, loop, seed):
        program = build_program(_spec(loop, seed))
        # Generated dynamic size must track the requested budget (loop body
        # granularity causes bounded overshoot on tiny budgets).
        assert program.dynamic_insns >= 0.5 * loop.dyn_insns
        assert program.dynamic_insns <= 3.0 * loop.dyn_insns + 5_000

    @given(loop=loop_specs, seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=25, deadline=None)
    def test_terminator_structure(self, loop, seed):
        """Terminator-less blocks must fall through to their layout
        successor — the invariant the fetch model relies on."""
        program = build_program(_spec(loop, seed))
        function = program.functions["main"]
        for position, label in enumerate(function.layout[:-1]):
            block = function.blocks[label]
            if block.terminator is None and block.successors:
                assert block.successors == [function.layout[position + 1]], label


class TestCacheModelProperties:
    @given(
        il1=st.sampled_from(BASE_GRID["il1_size"]),
        assoc=st.sampled_from(BASE_GRID["il1_assoc"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_icache_misses_monotone_in_size(self, il1, assoc):
        compiler = Compiler()
        binary = compiler.compile(
            build_program(
                _spec(
                    LoopSpec(
                        "fuzz",
                        trip_count=500.0,
                        dyn_insns=1e6,
                        body_blocks=6,
                        block_insns=48,
                        accesses=(AccessSpec("buf", loads_per_iter=1, stride=4),),
                    ),
                    seed=3,
                )
            ),
            o3_setting(),
        )
        base = dataclasses.replace(xscale(), il1_size=il1, il1_assoc=assoc)
        bigger_size = max(BASE_GRID["il1_size"])
        bigger = dataclasses.replace(base, il1_size=bigger_size)
        assert (
            simulate_analytic(binary, bigger).detail["ic_misses"]
            <= simulate_analytic(binary, base).detail["ic_misses"] + 1e-6
        )

    @given(dl1=st.sampled_from(BASE_GRID["dl1_size"]))
    @settings(max_examples=12, deadline=None)
    def test_dcache_misses_monotone_in_size(self, dl1):
        compiler = Compiler()
        spec = _spec(
            LoopSpec(
                "fuzz",
                trip_count=2000.0,
                dyn_insns=1e6,
                body_blocks=1,
                block_insns=8,
                accesses=(AccessSpec("buf", loads_per_iter=3, stride=8),),
            ),
            seed=4,
        )
        spec = dataclasses.replace(
            spec, regions=(RegionSpec("buf", 1 << 20, "stream"),)
        )
        binary = compiler.compile(build_program(spec), o3_setting())
        base = dataclasses.replace(xscale(), dl1_size=dl1)
        biggest = dataclasses.replace(base, dl1_size=max(BASE_GRID["dl1_size"]))
        assert (
            simulate_analytic(binary, biggest).detail["dc_misses"]
            <= simulate_analytic(binary, base).detail["dc_misses"] + 1e-6
        )

    @given(
        entries=st.sampled_from(BASE_GRID["btb_entries"]),
        assoc=st.sampled_from(BASE_GRID["btb_assoc"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_btb_miss_rate_monotone_in_entries(self, entries, assoc):
        compiler = Compiler()
        binary = compiler.compile(
            build_program(
                _spec(
                    LoopSpec(
                        "fuzz",
                        trip_count=100.0,
                        dyn_insns=1e6,
                        body_blocks=4,
                        block_insns=10,
                        diamonds=2,
                        accesses=(AccessSpec("buf", loads_per_iter=1, stride=4),),
                    ),
                    seed=5,
                )
            ),
            o3_setting(),
        )
        base = dataclasses.replace(
            xscale(), btb_entries=entries, btb_assoc=assoc
        )
        biggest = dataclasses.replace(base, btb_entries=2048)
        assert (
            simulate_analytic(binary, biggest).detail["btb_miss_rate"]
            <= simulate_analytic(binary, base).detail["btb_miss_rate"] + 1e-9
        )
