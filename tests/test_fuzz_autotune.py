"""Property-based invariants of the autotuning subsystem.

Whatever the strategy, seed, and budget, two things must hold because
the *scorer* enforces them (no strategy is trusted):

* a run never exceeds its evaluation budget, and fresh simulations
  never exceed evaluations;
* the trace's best-so-far trajectory is monotone non-increasing, and
  the recorded floor equals the best runtime seen.

One shared evaluator keeps the suite fast (the memo makes repeated
settings free); the properties hold regardless because the budget
counts *scored candidates*, memo hits included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import ALL_STRATEGIES, GUIDED_STRATEGIES, run_traced
from repro.compiler.flags import DEFAULT_SPACE
from repro.core.distribution import IIDDistribution
from repro.machine.xscale import xscale
from repro.programs import mibench_program
from repro.search import Evaluator

_EVALUATOR = Evaluator(program=mibench_program("crc"), machine=xscale())
_DISTRIBUTION = IIDDistribution.fit(
    DEFAULT_SPACE.sample_many(8, seed=11),
    space=DEFAULT_SPACE,
    smoothing=1.0,
)


@given(
    name=st.sampled_from(sorted(ALL_STRATEGIES)),
    budget=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_budget_and_simulation_bounds(name, budget, seed):
    trace = run_traced(
        ALL_STRATEGIES[name](),
        _EVALUATOR,
        budget=budget,
        seed=seed,
        distribution=_DISTRIBUTION if name in GUIDED_STRATEGIES else None,
    )
    assert trace.evaluations <= budget
    assert 0 <= trace.simulations <= trace.evaluations


@given(
    name=st.sampled_from(sorted(ALL_STRATEGIES)),
    budget=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_trajectory_monotone_and_floor_consistent(name, budget, seed):
    trace = run_traced(
        ALL_STRATEGIES[name](),
        _EVALUATOR,
        budget=budget,
        seed=seed,
        distribution=_DISTRIBUTION if name in GUIDED_STRATEGIES else None,
    )
    trajectory = trace.trajectory
    assert all(
        later <= earlier
        for earlier, later in zip(trajectory, trajectory[1:])
    )
    if trajectory:
        assert trajectory[-1] == trace.best_runtime
        assert trajectory[-1] == min(
            entry.runtime for entry in trace.entries
        )
