"""Tests for the versioned model registry: lifecycle, integrity, concurrency."""

from __future__ import annotations

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.api import ModelRegistry, RegistryError, Session
from repro.machine.xscale import xscale


@pytest.fixture(scope="module")
def fitted_session(tiny_data):
    session = Session("tiny", use_disk_cache=False)
    session.models.fit(tiny_data.training)
    return session


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestLifecycle:
    def test_register_assigns_sequential_versions(self, fitted_session, registry):
        first = fitted_session.models.register(registry=registry)
        second = fitted_session.models.register(registry=registry)
        assert (first.version, second.version) == (1, 2)
        assert registry.versions() == [1, 2]
        # Identical models share a content digest across versions.
        assert first.digest == second.digest
        assert first.fingerprint == fitted_session.models.fingerprint

    def test_nothing_promoted_until_asked(self, fitted_session, registry):
        fitted_session.models.register(registry=registry)
        assert registry.promoted_version() is None
        with pytest.raises(RegistryError, match="no promoted model"):
            registry.load()

    def test_register_with_promote_flips_pointer(self, fitted_session, registry):
        entry = fitted_session.models.register(registry=registry, promote=True)
        assert entry.promoted
        assert registry.promoted_version() == entry.version

    def test_promote_then_rollback(self, fitted_session, registry):
        fitted_session.models.register(registry=registry, promote=True)
        second = fitted_session.models.register(registry=registry, promote=True)
        assert registry.promoted_version() == second.version == 2
        rolled = registry.rollback()
        assert rolled.version == 1
        assert registry.promoted_version() == 1
        with pytest.raises(RegistryError, match="history is empty"):
            registry.rollback()

    def test_promote_unknown_version_rejected(self, registry):
        with pytest.raises(RegistryError, match="no model v0042"):
            registry.promote(42)

    def test_loaded_model_predicts_bit_identically(
        self, fitted_session, registry
    ):
        entry = fitted_session.models.register(registry=registry, promote=True)
        fresh = Session("tiny", use_disk_cache=False)
        loaded = fresh.models.load_registered(registry=registry)
        assert loaded.version == entry.version
        assert fresh.models.fingerprint == fitted_session.models.fingerprint
        machine = xscale()
        original = fitted_session.models.rank("sha", machine, top=3)
        restored = fresh.models.rank("sha", machine, top=3)
        assert original.payload() == restored.payload()

    def test_list_marks_promoted(self, fitted_session, registry):
        fitted_session.models.register(registry=registry)
        fitted_session.models.register(registry=registry, promote=True)
        entries = registry.list()
        assert [entry.promoted for entry in entries] == [False, True]
        assert "*promoted*" in registry.render()

    def test_metadata_carries_scale(self, fitted_session, registry):
        entry = fitted_session.models.register(
            registry=registry, metadata={"note": "pinned"}
        )
        assert entry.metadata["scale"] == "tiny"
        assert entry.metadata["note"] == "pinned"


class TestIntegrity:
    def test_corrupt_model_file_detected(self, fitted_session, registry):
        entry = fitted_session.models.register(registry=registry, promote=True)
        path = registry._model_path(entry.version)
        payload = json.loads(path.read_text())
        payload["model"]["params"]["k"] = 99  # tamper with the weights
        path.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="digest mismatch"):
            registry.load()

    def test_foreign_format_rejected(self, fitted_session, registry):
        entry = fitted_session.models.register(registry=registry)
        path = registry._model_path(entry.version)
        payload = json.loads(path.read_text())
        payload["format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="format"):
            registry.load(entry.version)

    def test_registered_files_never_rewritten(self, fitted_session, registry):
        entry = fitted_session.models.register(registry=registry)
        path = registry._model_path(entry.version)
        before = path.read_text()
        fitted_session.models.register(registry=registry)
        assert path.read_text() == before


def _promote_worker(args):
    """Promote one already-registered version from a separate process."""
    registry_root, version = args
    from repro.api import ModelRegistry

    ModelRegistry(registry_root).promote(version)
    return version


def _register_worker(args):
    """Register (and promote) one model from a separate process."""
    registry_root, model_path, worker = args
    from repro.api import ModelRegistry, Session

    session = Session("tiny", use_disk_cache=False)
    session.models.load(model_path)
    registry = ModelRegistry(registry_root)
    entry = session.models.register(
        registry=registry, metadata={"worker": worker}, promote=True
    )
    return entry.version


class TestConcurrentAccess:
    """Two sessions against one registry dir must never corrupt anything.

    Mirrors the experiment store's append-only guarantees: every
    registration lands under a unique version, every file stays
    digest-valid, and the promotion pointer is always readable.
    """

    N_WORKERS = 8

    def test_concurrent_register_and_promote(
        self, fitted_session, tmp_path
    ):
        model_path = tmp_path / "model.json"
        fitted_session.models.save(model_path)
        registry_root = tmp_path / "registry"
        with multiprocessing.get_context("spawn").Pool(4) as pool:
            versions = pool.map(
                _register_worker,
                [
                    (str(registry_root), str(model_path), worker)
                    for worker in range(self.N_WORKERS)
                ],
            )
        # Every worker got its own version; none were lost or duplicated.
        assert sorted(versions) == list(range(1, self.N_WORKERS + 1))
        registry = ModelRegistry(registry_root)
        assert registry.versions() == sorted(versions)
        # No temp-file debris and no torn writes: every entry verifies.
        entries = registry.list()
        assert len(entries) == self.N_WORKERS
        assert not list(Path(registry_root).rglob("*.tmp"))
        # The promotion pointer is valid JSON pointing at a real version,
        # whoever won the promote race.
        promoted = registry.promoted_version()
        assert promoted in versions
        predictor, entry = registry.load()
        assert entry.version == promoted
        assert predictor.is_fitted

    def test_concurrent_promotions_lose_no_history(
        self, fitted_session, tmp_path
    ):
        """N concurrent promotes serialise: every version ends up either
        current or in the rollback history — none vanish."""
        registry = ModelRegistry(tmp_path / "registry")
        versions = [
            fitted_session.models.register(registry=registry).version
            for _ in range(6)
        ]
        with multiprocessing.get_context("spawn").Pool(3) as pool:
            pool.map(
                _promote_worker,
                [(str(registry.root), version) for version in versions],
            )
        state = json.loads((registry.root / "promoted.json").read_text())
        assert state["current"] in versions
        assert len(state["history"]) == len(versions) - 1
        assert sorted(state["history"] + [state["current"]]) == versions

    def test_interleaved_promote_rollback_stays_consistent(
        self, fitted_session, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "registry")
        versions = [
            fitted_session.models.register(registry=registry).version
            for _ in range(3)
        ]
        registry.promote(versions[0])
        registry.promote(versions[1])
        registry.promote(versions[2])
        assert registry.promoted_version() == versions[2]
        assert registry.rollback().version == versions[1]
        assert registry.rollback().version == versions[0]
        # The pointer file survived every flip as valid JSON.
        state = json.loads((registry.root / "promoted.json").read_text())
        assert state["current"] == versions[0]
        assert state["history"] == []
