"""The repro.autotune subsystem: core, scorer, strategies, tournament."""

import json
import math
import random
from pathlib import Path

import pytest

from repro.autotune import (
    ALL_STRATEGIES,
    BatchScorer,
    BeamSearch,
    GUIDED_STRATEGIES,
    ModelSeededGenetic,
    RandomSearch,
    SearchBudget,
    SearchContext,
    SearchStrategy,
    SearchTrace,
    check_model_beats_random,
    run_strategy,
    run_traced,
    run_tournament,
)
from repro.compiler.flags import DEFAULT_SPACE, o3_setting
from repro.core.distribution import IIDDistribution
from repro.machine.xscale import xscale
from repro.programs import mibench_program
from repro.search import (
    Evaluator,
    combined_elimination,
    genetic_search,
    hill_climb,
    random_search,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "search_golden.json").read_text()
)

LEGACY_DRIVERS = {
    "random": lambda ev, p: random_search(ev, p["budget"], p["seed"]),
    "hillclimb": lambda ev, p: hill_climb(ev, p["budget"], p["seed"]),
    "genetic": lambda ev, p: genetic_search(
        ev,
        p["budget"],
        p["seed"],
        population_size=p.get("population_size", 20),
    ),
    "combined-elimination": lambda ev, p: combined_elimination(
        ev, budget=p.get("budget")
    ),
}


def make_evaluator(program_name: str = "sha") -> Evaluator:
    return Evaluator(program=mibench_program(program_name), machine=xscale())


@pytest.fixture(scope="module")
def distribution() -> IIDDistribution:
    """A synthetic fitted distribution (10 uniform settings, smoothed)."""
    return IIDDistribution.fit(
        DEFAULT_SPACE.sample_many(10, seed=1),
        space=DEFAULT_SPACE,
        smoothing=1.0,
    )


# ------------------------------------------------------------------ budget
class TestSearchBudget:
    def test_none_means_unbounded(self):
        assert SearchBudget(None).limit == math.inf

    def test_finite_limit(self):
        assert SearchBudget(25).limit == 25.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SearchBudget(0)
        with pytest.raises(ValueError):
            SearchBudget(-3)


# ------------------------------------------------------------------- trace
class TestSearchTrace:
    def _trace(self, runtimes, fresh=None):
        trace = SearchTrace(o3_runtime=2.0)
        fresh = fresh if fresh is not None else [True] * len(runtimes)
        for runtime, is_fresh in zip(runtimes, fresh):
            trace.record(o3_setting(), runtime, "test", is_fresh)
        return trace

    def test_best_is_strict_less_first_wins(self):
        settings = DEFAULT_SPACE.sample_many(2, seed=0)
        trace = SearchTrace()
        trace.record(settings[0], 1.0, "a", True)
        trace.record(settings[1], 1.0, "b", True)  # tie: first wins
        assert trace.best_setting == settings[0]

    def test_trajectory_monotone_and_folded(self):
        trace = self._trace([3.0, 4.0, 2.0, 2.5])
        assert trace.trajectory == [3.0, 3.0, 2.0, 2.0]

    def test_simulations_count_only_fresh(self):
        trace = self._trace([3.0, 3.0, 2.0], fresh=[True, False, True])
        assert trace.evaluations == 3
        assert trace.simulations == 2

    def test_speedup_vs_o3_recorded(self):
        trace = self._trace([4.0, 1.0])
        assert trace.entries[0].speedup_vs_o3 == pytest.approx(0.5)
        assert trace.entries[1].speedup_vs_o3 == pytest.approx(2.0)

    def test_evaluations_to_reach_none_iff_never_reached(self):
        trace = self._trace([3.0, 2.0, 2.0])
        assert trace.evaluations_to_reach(3.0) == 1
        assert trace.evaluations_to_reach(2.0) == 2
        # Reached on the final evaluation: the index equals the length —
        # still not None.  None is reserved for "never reached".
        assert trace.evaluations_to_reach(2.0) is not None
        assert trace.evaluations_to_reach(1.9) is None

    def test_simulations_to_reach_counts_cache_misses(self):
        trace = self._trace([3.0, 2.5, 2.0], fresh=[True, False, True])
        assert trace.simulations_to_reach(2.0) == 2
        assert trace.simulations_to_reach(0.1) is None

    def test_set_final_overrides_result_not_trajectory(self):
        settings = DEFAULT_SPACE.sample_many(2, seed=3)
        trace = SearchTrace()
        trace.record(settings[0], 1.0, "probe", True)
        trace.record(settings[1], 2.0, "converged", True)
        trace.set_final(settings[1], 2.0)
        result = trace.result()
        assert result.best_setting == settings[1]
        assert result.best_runtime == 2.0
        # The convergence curve still reports the probe's floor.
        assert trace.trajectory == [1.0, 1.0]


# ------------------------------------------------------------------ scorer
class TestBatchScorer:
    def test_truncates_over_budget_batch(self):
        evaluator = make_evaluator()
        trace = SearchTrace()
        scorer = BatchScorer(evaluator, SearchBudget(5), trace)
        settings = DEFAULT_SPACE.sample_many(9, seed=2)
        runtimes = scorer.score(settings, "sample")
        assert len(runtimes) == 5
        assert trace.evaluations == 5
        assert scorer.exhausted

    def test_score_one_returns_none_when_exhausted(self):
        evaluator = make_evaluator()
        scorer = BatchScorer(evaluator, SearchBudget(1), SearchTrace())
        assert scorer.score_one(o3_setting(), "first") is not None
        assert scorer.score_one(o3_setting(), "second") is None

    def test_memo_hits_cost_no_simulation(self):
        evaluator = make_evaluator()
        trace = SearchTrace()
        scorer = BatchScorer(evaluator, SearchBudget(4), trace)
        setting = DEFAULT_SPACE.sample_many(1, seed=4)[0]
        scorer.score([setting, setting], "dup")
        scorer.score([setting], "dup-again")
        assert trace.evaluations == 3
        assert trace.simulations == 1

    def test_unbounded_budget_never_exhausts(self):
        evaluator = make_evaluator()
        scorer = BatchScorer(evaluator, SearchBudget(None), SearchTrace())
        assert scorer.remaining == math.inf
        assert not scorer.exhausted


# ----------------------------------------------- golden shim bit-identity
@pytest.mark.parametrize(
    "case",
    GOLDEN["cases"],
    ids=[f"{c['algorithm']}-{c['program']}" for c in GOLDEN["cases"]],
)
def test_legacy_shims_bit_identical_to_golden(case):
    """The re-homed strategies reproduce the legacy drivers exactly:
    same evaluations, same fresh-simulation count, same best setting,
    same trajectory to the last bit."""
    evaluator = make_evaluator(case["program"])
    result = LEGACY_DRIVERS[case["algorithm"]](evaluator, case["params"])
    assert result.evaluations == case["evaluations"]
    assert len(evaluator._cache) == case["simulations"]
    assert result.best_runtime == case["best_runtime"]
    assert list(result.best_setting.as_indices()) == case["best_setting"]
    assert result.trajectory == case["trajectory"]


# -------------------------------------------------------------- strategies
class TestStrategyContract:
    @pytest.mark.parametrize("name", sorted(ALL_STRATEGIES))
    def test_satisfies_protocol(self, name):
        strategy = ALL_STRATEGIES[name]()
        assert isinstance(strategy, SearchStrategy)
        assert strategy.name == name

    @pytest.mark.parametrize("name", sorted(ALL_STRATEGIES))
    def test_budget_never_exceeded(self, name, distribution):
        trace = run_traced(
            ALL_STRATEGIES[name](),
            make_evaluator(),
            budget=10,
            seed=0,
            distribution=(
                distribution if name in GUIDED_STRATEGIES else None
            ),
        )
        assert trace.evaluations <= 10
        assert trace.simulations <= trace.evaluations

    @pytest.mark.parametrize("name", sorted(ALL_STRATEGIES))
    def test_same_seed_same_trace(self, name, distribution):
        kwargs = dict(
            budget=12,
            seed=7,
            distribution=(
                distribution if name in GUIDED_STRATEGIES else None
            ),
        )
        one = run_traced(ALL_STRATEGIES[name](), make_evaluator(), **kwargs)
        two = run_traced(ALL_STRATEGIES[name](), make_evaluator(), **kwargs)
        assert one.trajectory == two.trajectory
        assert [e.setting for e in one.entries] == [
            e.setting for e in two.entries
        ]

    def test_random_search_rejects_unbounded_budget(self):
        with pytest.raises(ValueError):
            run_strategy(RandomSearch(), make_evaluator(), budget=None)


class TestModelGuided:
    def test_model_seeded_population_heads_with_top_settings(
        self, distribution
    ):
        strategy = ModelSeededGenetic(population_size=8)
        evaluator = make_evaluator()
        trace = SearchTrace()
        scorer = BatchScorer(evaluator, SearchBudget(40), trace)
        context = SearchContext(
            rng=random.Random(0), distribution=distribution
        )
        population = strategy._initial_population(scorer, context)
        assert len(population) == 8
        ranked = [s for s, _ in distribution.top_settings(2)]
        assert population[:2] == ranked

    def test_model_seeded_requires_distribution(self):
        with pytest.raises(ValueError, match="model-guided"):
            run_strategy(ModelSeededGenetic(), make_evaluator(), budget=10)

    def test_beam_requires_distribution(self):
        with pytest.raises(ValueError, match="model-guided"):
            run_strategy(BeamSearch(), make_evaluator(), budget=10)

    def test_beam_is_deterministic_across_seeds(self, distribution):
        runs = [
            run_traced(
                BeamSearch(),
                make_evaluator(),
                budget=20,
                seed=seed,
                distribution=distribution,
            )
            for seed in (0, 99)
        ]
        assert runs[0].trajectory == runs[1].trajectory

    def test_mutation_stays_in_model_support(self, distribution):
        """Model-biased mutation only picks values the distribution
        assigns positive probability (trivially true after smoothing,
        pinned against a future unsmoothed regression)."""
        strategy = ModelSeededGenetic(mutation_rate=1.0)
        context = SearchContext(
            rng=random.Random(5), distribution=distribution
        )
        mutated = strategy._mutate_setting(
            context.rng, o3_setting(), context
        )
        assert distribution.log_prob(mutated) > -math.inf


# -------------------------------------------------------------- tournament
@pytest.fixture(scope="module")
def small_tournament(distribution):
    programs = [mibench_program("sha")]
    machines = [xscale()]
    return run_tournament(
        programs,
        machines,
        budget=15,
        seeds=(0, 1),
        distribution_for=lambda program, machine: distribution,
    )


class TestTournament:
    def test_all_strategies_compete(self, small_tournament):
        names = {standing.strategy for standing in small_tournament.standings}
        assert names == set(ALL_STRATEGIES)

    def test_deterministic_strategies_run_once_per_pair(
        self, small_tournament
    ):
        for standing in small_tournament.standings:
            expected = 1 if standing.deterministic else 2
            assert standing.runs == expected, standing.strategy

    def test_unmatched_runs_charged_full_budget(self, small_tournament):
        for run in small_tournament.runs:
            if not run.matched:
                assert run.evaluations_to_match == small_tournament.budget
                assert run.simulations_to_match >= small_tournament.budget

    def test_guided_strategies_pay_the_profile_run(self, small_tournament):
        for run in small_tournament.runs:
            if run.strategy in GUIDED_STRATEGIES and run.matched:
                # evaluations never include the profile; simulations do.
                assert run.simulations_to_match >= 1

    def test_best_known_is_floor_over_all_runs(self, small_tournament):
        floor = min(run.best_runtime for run in small_tournament.runs)
        assert min(small_tournament.best_known.values()) == floor

    def test_render_mentions_every_strategy(self, small_tournament):
        rendered = small_tournament.render()
        for name in ALL_STRATEGIES:
            assert name in rendered

    def test_same_seed_tournaments_byte_identical(self, distribution):
        """Satellite regression: two identically-configured tournaments
        must render byte-identical markdown and JSON."""

        def once():
            return run_tournament(
                [mibench_program("crc")],
                [xscale()],
                budget=12,
                seeds=(0, 1),
                distribution_for=lambda program, machine: distribution,
            )

        one, two = once(), once()
        assert one.json_text() == two.json_text()
        assert one.render() == two.render()

    def test_validates_inputs(self, distribution):
        with pytest.raises(ValueError, match="budget"):
            run_tournament([mibench_program("sha")], [xscale()], budget=0)
        with pytest.raises(ValueError, match=">= 1"):
            run_tournament([], [xscale()], budget=5)
        with pytest.raises(ValueError, match="unknown"):
            run_tournament(
                [mibench_program("sha")],
                [xscale()],
                budget=5,
                strategies=["nope"],
            )
        with pytest.raises(ValueError, match="model-guided"):
            run_tournament(
                [mibench_program("sha")],
                [xscale()],
                budget=5,
                strategies=["model-genetic"],
            )

    def test_guided_excluded_without_distribution(self):
        result = run_tournament(
            [mibench_program("sha")], [xscale()], budget=8, seeds=(0,)
        )
        names = {standing.strategy for standing in result.standings}
        assert names == set(ALL_STRATEGIES) - set(GUIDED_STRATEGIES)


class TestSmokeGate:
    def test_gate_requires_strictly_fewer_simulations(
        self, small_tournament
    ):
        ok, message = check_model_beats_random(small_tournament)
        guided = small_tournament.standing("model-genetic")
        baseline = small_tournament.standing("random")
        expected = (
            guided.mean_simulations_to_match
            < baseline.mean_simulations_to_match
            and guided.mean_evaluations_to_match
            <= baseline.mean_evaluations_to_match
        )
        assert ok == expected
        assert ("PASS" if ok else "FAIL") in message

    def test_gate_unknown_strategy_raises(self, small_tournament):
        with pytest.raises(KeyError):
            check_model_beats_random(small_tournament, model="nope")
