"""``repro-experiments fsck``: classification and repair of every
corruption class across the four durable store families.

The contract under test, per store:

* every damaged artifact is *classified* (corrupt / torn-tail /
  digest-mismatch / orphaned / stale-lease), never silently skipped;
* ``--repair`` quarantines (or exactly repairs: truncated journal
  tails, rewritten promotion pointers, deleted tombstones) so that the
  next resume rebuilds exactly the damaged units — intact work is
  never re-simulated;
* the CLI exits 1 while unrepaired problems remain and 0 once the
  cache is clean or fully repaired.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.api.registry import ModelRegistry
from repro.evalrun.foldstore import FoldStore
from repro.evalrun.pipeline import EvaluationPipeline
from repro.evalrun.variants import make_predictor, protocol_fingerprint, variant_by_key
from repro.experiments.config import Scale
from repro.experiments.dataset import grid_for_scale
from repro.faults.fsck import (
    QUARANTINE_DIR,
    FsckReport,
    fsck_cache,
    fsck_path,
    scrub_jobs,
)
from repro.programs.mibench import mibench_program
from repro.service.jobs import JobJournal
from repro.store import ExperimentRunner, ExperimentStore

SMOKE = Scale(name="smoke", programs=("crc", "search"), n_machines=4, n_settings=6)


@pytest.fixture(scope="module")
def smoke_grid():
    return grid_for_scale(SMOKE, chunk_machines=2)


@pytest.fixture(scope="module")
def clean_cache(smoke_grid, tmp_path_factory):
    """A fully populated cache root: experiment store, fold store,
    registry (two promoted versions), and one finished job journal."""
    cache = tmp_path_factory.mktemp("fsck") / "cache"
    cache.mkdir()
    store = ExperimentStore(
        smoke_grid, cache / f"store-smoke-{smoke_grid.fingerprint()}"
    )
    ExperimentRunner(store).run()

    training = store.assemble()
    variants = [variant_by_key("base")]
    fingerprint = protocol_fingerprint(training, variants)
    folds = FoldStore(
        fingerprint,
        variants,
        list(training.program_names),
        root=cache / f"protocol-smoke-{fingerprint}",
    )
    programs = [mibench_program(name) for name in training.program_names]
    EvaluationPipeline(training, programs, folds).run()

    registry = ModelRegistry(cache / "registry")
    predictor = make_predictor(variants[0], training).fit(training)
    registry.register(predictor, fingerprint=fingerprint, metadata={"gen": 1}, promote=True)
    registry.register(predictor, fingerprint=fingerprint, metadata={"gen": 2}, promote=True)

    journal = JobJournal.create(cache / "jobs" / "job-0001", "job-0001", {"kind": "noop"})
    _, chain = journal.load_events("job-0001")
    chain = journal.append({"event": "started", "job": "job-0001"}, chain)
    journal.append({"event": "complete", "job": "job-0001"}, chain)

    return {
        "cache": cache,
        "store_fingerprint": store.fingerprint(),
        "protocol_fingerprint": fingerprint,
        "fold_fingerprint": folds.fingerprint(),
    }


@pytest.fixture
def cache_copy(clean_cache, tmp_path):
    copy = tmp_path / "cache"
    shutil.copytree(clean_cache["cache"], copy)
    return copy


def _status_of(report, fragment):
    matches = [f for f in report.findings if fragment in f.path]
    assert matches, f"no finding mentions {fragment!r}: {[f.path for f in report.findings]}"
    return matches[0]


class TestCleanCache:
    def test_everything_verifies_ok(self, clean_cache):
        report = fsck_cache(clean_cache["cache"])
        assert report.clean
        counts = report.counts()
        assert set(counts) == {"ok"} and counts["ok"] > 5
        assert "every artifact verified clean" in report.render()

    def test_missing_cache_root_is_empty_not_fatal(self, tmp_path):
        report = fsck_cache(tmp_path / "nowhere")
        assert report.clean and not report.findings


class TestExperimentStoreScrub:
    def test_every_corruption_class_is_classified(self, cache_copy, smoke_grid):
        shards = cache_copy / f"store-smoke-{smoke_grid.fingerprint()}" / "shards"
        victims = sorted(shards.glob("*.npz"))
        assert len(victims) >= 4
        zero, torn, mismatch, sidecar_torn = victims[:4]
        zero.write_bytes(b"")
        torn.write_bytes(torn.read_bytes()[:64])
        payload = json.loads(mismatch.with_suffix(".json").read_text())
        payload["fingerprint"] = "0" * len(str(payload["fingerprint"]))
        mismatch.with_suffix(".json").write_text(json.dumps(payload))
        sidecar_torn.with_suffix(".json").write_text('{"torn')
        (shards / "zzzz.json").write_text(json.dumps(payload))  # sidecar, no arrays
        (shards / "yyyy.npz").write_bytes(b"not an npz")  # arrays, no sidecar
        (shards / ".xxxx.npz.123.tmp").write_bytes(b"leftover")

        report = fsck_cache(cache_copy)
        assert _status_of(report, zero.name).status == "torn-tail"
        assert _status_of(report, torn.name).status == "torn-tail"
        assert _status_of(report, mismatch.name).status == "digest-mismatch"
        assert _status_of(report, sidecar_torn.with_suffix(".json").name).status == "corrupt"
        assert _status_of(report, "zzzz.json").status == "orphaned"
        assert _status_of(report, "yyyy.npz").status == "orphaned"
        assert _status_of(report, ".xxxx.npz.123.tmp").status == "orphaned"
        # Read-only by default: nothing was repaired, everything reported.
        assert not any(f.repaired for f in report.findings)
        assert len(report.unrepaired) == 7
        # Every finding is anchored at the cache root, naming its store.
        assert all(f.path.startswith("store-") for f in report.problems)

    def test_foreign_grid_shard_is_orphaned(self, cache_copy, smoke_grid):
        shards = cache_copy / f"store-smoke-{smoke_grid.fingerprint()}" / "shards"
        victim = sorted(shards.glob("*.json"))[0]
        payload = json.loads(victim.read_text())
        payload["grid_fingerprint"] = "feedbeef"
        victim.write_text(json.dumps(payload))
        report = fsck_cache(cache_copy)
        finding = _status_of(report, victim.with_suffix(".npz").name)
        assert finding.status == "orphaned"
        assert "different grid" in finding.detail

    def test_repair_then_resume_rebuilds_only_the_damaged_unit(
        self, cache_copy, smoke_grid, clean_cache
    ):
        root = cache_copy / f"store-smoke-{smoke_grid.fingerprint()}"
        victim = sorted((root / "shards").glob("*.npz"))[0]
        victim.write_bytes(b"")
        total = len(list(ExperimentStore(smoke_grid, root).completed_keys()))

        report = fsck_cache(cache_copy, repair=True)
        assert not report.unrepaired
        # Both halves of the damaged unit moved to quarantine together.
        quarantined = {p.name for p in (root / QUARANTINE_DIR).iterdir()}
        assert quarantined == {victim.name, victim.with_suffix(".json").name}

        store = ExperimentStore(smoke_grid, root)
        assert len(store.pending_keys()) == 1  # exactly the damaged unit
        assert len(list(store.completed_keys())) == total  # intact work kept
        ExperimentRunner(store).run()
        assert store.fingerprint() == clean_cache["store_fingerprint"]


class TestFoldStoreScrub:
    def test_every_corruption_class_is_classified(self, cache_copy, clean_cache):
        root = cache_copy / f"protocol-smoke-{clean_cache['protocol_fingerprint']}"
        folds = sorted((root / "folds").glob("*.json"))
        assert len(folds) >= 2
        torn, mismatch = folds[:2]
        torn.write_text('{"torn')
        payload = json.loads(mismatch.read_text())
        payload["fingerprint"] = "0" * 8
        mismatch.write_text(json.dumps(payload))
        foreign = dict(json.loads(folds[1].read_text()))
        foreign["protocol_fingerprint"] = "feedbeef"
        (root / "folds" / "foreign.json").write_text(json.dumps(foreign))
        (root / "folds" / "empty.json").write_bytes(b"")
        (root / "folds" / ".stray.json.9.tmp").write_bytes(b"leftover")

        report = fsck_cache(cache_copy)
        assert _status_of(report, torn.name).status == "corrupt"
        assert _status_of(report, mismatch.name).status == "digest-mismatch"
        assert _status_of(report, "foreign.json").status == "orphaned"
        assert _status_of(report, "empty.json").status == "torn-tail"
        assert _status_of(report, ".stray.json.9.tmp").status == "orphaned"

    def test_repair_then_resume_restores_the_clean_fingerprint(
        self, cache_copy, clean_cache, smoke_grid
    ):
        root = cache_copy / f"protocol-smoke-{clean_cache['protocol_fingerprint']}"
        victim = sorted((root / "folds").glob("*.json"))[0]
        victim.write_text('{"torn')
        assert not fsck_cache(cache_copy, repair=True).unrepaired

        store = ExperimentStore(
            smoke_grid, cache_copy / f"store-smoke-{smoke_grid.fingerprint()}"
        )
        training = store.assemble()
        variants = [variant_by_key("base")]
        folds = FoldStore(
            clean_cache["protocol_fingerprint"],
            variants,
            list(training.program_names),
            root=root,
        )
        assert len(list(folds.pending_keys())) == 1
        programs = [mibench_program(name) for name in training.program_names]
        EvaluationPipeline(training, programs, folds).run()
        assert folds.fingerprint() == clean_cache["fold_fingerprint"]


class TestRegistryScrub:
    def test_damage_classified_and_pointer_rewritten_from_history(self, cache_copy):
        models = cache_copy / "registry" / "models"
        # v0002 (currently promoted): content no longer matches its digest.
        entry = json.loads((models / "v0002.json").read_text())
        entry["metadata"]["gen"] = 999
        (models / "v0002.json").write_text(json.dumps(entry))
        (models / "v0003.json").write_text('{"torn')  # torn model entry
        (models / "v0001.arrays.npz").write_bytes(b"junk")  # torn ranking sidecar
        (models / "v0009.arrays.npz").write_bytes(b"junk")  # sidecar, no entry

        report = fsck_cache(cache_copy, repair=True)
        assert _status_of(report, "v0002.json").status == "digest-mismatch"
        assert _status_of(report, "v0003.json").status == "corrupt"
        assert _status_of(report, "v0001.arrays.npz").status == "torn-tail"
        assert _status_of(report, "v0009.arrays.npz").status == "orphaned"
        pointer = _status_of(report, "promoted.json")
        assert pointer.status == "orphaned" and pointer.repair == "rewrite"
        assert not report.unrepaired

        # The pointer fell back to the surviving version from its own
        # history; the registry loads without error afterwards.
        registry = ModelRegistry(cache_copy / "registry")
        assert registry.promoted_version() == 1
        assert registry.versions() == [1]
        assert fsck_cache(cache_copy).clean

    def test_torn_pointer_quarantines_and_promotions_reset(self, cache_copy):
        pointer = cache_copy / "registry" / "promoted.json"
        pointer.write_text('{"torn')
        report = fsck_cache(cache_copy, repair=True)
        finding = _status_of(report, "promoted.json")
        assert finding.status == "corrupt" and finding.repaired
        assert not pointer.exists()  # quarantined, never silently rewritten
        registry = ModelRegistry(cache_copy / "registry")
        assert registry.promoted_version() is None  # reset, not crashed
        assert registry.versions() == [1, 2]  # models untouched


class TestJobsScrub:
    def _report(self, root, repair):
        report = FsckReport(root=str(root), repair=repair)
        scrub_jobs(root, repair, report)
        return report

    def test_torn_journal_tail_truncates_to_verified_prefix(self, tmp_path):
        journal = JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        _, chain = journal.load_events("job-0001")
        chain = journal.append({"event": "started"}, chain)
        journal.append({"event": "fold", "fold": "a"}, chain)
        events_path = tmp_path / "job-0001" / JobJournal.EVENTS_NAME
        raw = events_path.read_bytes()
        events_path.write_bytes(raw[:-5])

        report = self._report(tmp_path, repair=True)
        finding = _status_of(report, JobJournal.EVENTS_NAME)
        assert finding.status == "torn-tail" and finding.repaired
        events, _ = journal.load_events("job-0001")
        assert [event["event"] for event in events] == ["started"]
        # The truncated journal now verifies clean end to end.
        assert self._report(tmp_path, repair=False).clean

    def test_corrupt_meta_quarantines_the_whole_job(self, tmp_path):
        JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        (tmp_path / "job-0002").mkdir()
        (tmp_path / "job-0002" / JobJournal.META_NAME).write_text('{"torn')

        report = self._report(tmp_path, repair=True)
        finding = _status_of(report, "job-0002")
        assert finding.status == "corrupt" and finding.repaired
        assert not (tmp_path / "job-0002").exists()
        assert (tmp_path / QUARANTINE_DIR / "job-0002").is_dir()
        assert (tmp_path / "job-0001").is_dir()  # healthy neighbour untouched

    def test_corrupt_snapshot_quarantined_journal_survives(self, tmp_path):
        journal = JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        events, chain = journal.load_events("job-0001")
        chain = journal.append({"event": "started"}, chain)
        events, chain = journal.load_events("job-0001")
        journal.compact("job-0001", events, chain)
        snapshot = tmp_path / "job-0001" / JobJournal.SNAPSHOT_NAME
        assert snapshot.exists()
        snapshot.write_text('{"torn')

        report = self._report(tmp_path, repair=True)
        finding = _status_of(report, JobJournal.SNAPSHOT_NAME)
        assert finding.status == "corrupt" and finding.repaired
        assert not snapshot.exists()


class TestClusterScrub:
    def test_every_corruption_class_is_classified_and_repaired(
        self, cache_copy, smoke_grid
    ):
        from repro.cluster.lease import LeaseTable

        root = cache_copy / f"store-smoke-{smoke_grid.fingerprint()}"
        leases = root / "cluster" / LeaseTable.LEASE_SUBDIR
        leases.mkdir(parents=True)
        (leases / LeaseTable.META_NAME).write_text('{"torn')
        (leases / "a.lease").write_text('{"torn')
        stale = leases / "b.lease"
        stale.write_text(json.dumps({"owner": "w1"}))
        os.utime(stale, (1.0, 1.0))
        fresh = leases / "c.lease"
        fresh.write_text(json.dumps({"owner": "w2"}))
        (leases / "d.reclaim").write_bytes(b"")
        progress = root / "cluster" / "progress"
        progress.mkdir()
        (progress / "w1.json").write_text('{"torn')

        report = fsck_path(root, repair=True, ttl=60.0)
        assert _status_of(report, LeaseTable.META_NAME).status == "corrupt"
        assert _status_of(report, "a.lease").status == "corrupt"
        assert _status_of(report, "b.lease").status == "stale-lease"
        assert _status_of(report, "c.lease").status == "ok"
        assert _status_of(report, "d.reclaim").status == "orphaned"
        assert _status_of(report, "progress/w1.json").status == "corrupt"
        assert not report.unrepaired
        # Repairs: corrupt/stale leases and tombstones deleted, live
        # lease kept, unreadable table quarantined for inspection.
        assert sorted(p.name for p in leases.iterdir()) == ["c.lease"]
        assert not (progress / "w1.json").exists()
        assert (root / QUARANTINE_DIR / LeaseTable.META_NAME).exists()


class TestFsckCli:
    def test_exit_codes_and_json_over_the_full_cycle(self, cache_copy, smoke_grid, capsys):
        from repro.cli import main

        victim = sorted(
            (cache_copy / f"store-smoke-{smoke_grid.fingerprint()}" / "shards").glob("*.npz")
        )[0]
        victim.write_bytes(b"")

        assert main(["fsck", "--cache-dir", str(cache_copy)]) == 1  # unrepaired damage
        assert "--repair" in capsys.readouterr().out
        assert main(["fsck", "--repair", "--json", "--cache-dir", str(cache_copy)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repair"] is True
        assert payload["counts"]["torn-tail"] == 1
        assert all(problem["repaired"] for problem in payload["problems"])
        assert main(["fsck", "--cache-dir", str(cache_copy)]) == 0  # clean now
