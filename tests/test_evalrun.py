"""The resumable paper-protocol pipeline: store, oracle, pipeline, report.

The load-bearing guarantees, each tested directly:

* the fold store is append-only, digest-verified, and resumable;
* the oracle answers grid settings from the store-assembled matrix with
  zero simulation and memoises the out-of-grid fallback;
* `run_protocol` output is bit-identical across serial/thread/process
  executors and across a kill-and-resume cycle, with zero re-simulation
  of folds already checkpointed (the simulation-call counter);
* the report renderer subsets artifacts and refuses missing variants.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.api import Session
from repro.evalrun import (
    EvaluationPipeline,
    FoldKey,
    FoldRecord,
    FoldRow,
    FoldStore,
    FoldStoreError,
    RuntimeOracle,
    fold_fingerprint,
    protocol_fingerprint,
    protocol_variants,
    render_report,
    resolve_artifacts,
    variants_for_artifacts,
)
from repro.evalrun.pipeline import assemble_protocol


def _variants(tiny_data):
    return protocol_variants(
        with_code=tiny_data.training.code_features is not None
    )


def _store(tiny_data, root=None):
    variants = _variants(tiny_data)
    return FoldStore(
        protocol_fingerprint(tiny_data.training, variants),
        variants,
        list(tiny_data.training.program_names),
        root=root,
    )


def _pipeline(tiny_data, store, **kwargs):
    return EvaluationPipeline(
        tiny_data.training, tiny_data.programs, store, **kwargs
    )


def _record(variant="base", program="qsort", runtime=1.5):
    return FoldRecord(
        key=FoldKey(variant, program),
        rows=(
            FoldRow(
                machine=0,
                setting=tuple([0] * 39),
                predicted_runtime=runtime,
                o3_runtime=2.0,
                best_runtime=1.0,
            ),
        ),
    )


class TestFoldStore:
    def test_roundtrip_on_disk(self, tiny_data, tmp_path):
        store = _store(tiny_data, root=tmp_path / "proto")
        record = _record()
        store.write_fold(record)
        assert store.has_fold(record.key)
        loaded = store.read_fold(record.key)
        assert loaded == record
        assert fold_fingerprint(loaded) == fold_fingerprint(record)

    def test_append_only_first_write_wins(self, tiny_data, tmp_path):
        store = _store(tiny_data, root=tmp_path / "proto")
        first = _record(runtime=1.5)
        second = _record(runtime=9.9)
        store.write_fold(first)
        store.write_fold(second)  # silently ignored
        assert store.read_fold(first.key).rows[0].predicted_runtime == 1.5

    def test_corrupt_shard_is_treated_as_pending(self, tiny_data, tmp_path):
        store = _store(tiny_data, root=tmp_path / "proto")
        record = _record()
        store.write_fold(record)
        path = store._fold_path(record.key)
        shard = json.loads(path.read_text())
        shard["record"]["rows"][0]["predicted_runtime"] = 123.0
        path.write_text(json.dumps(shard))
        fresh = _store(tiny_data, root=tmp_path / "proto")
        assert not fresh.has_fold(record.key)
        assert record.key in fresh.pending_keys()
        with pytest.raises(FoldStoreError, match="not in store|corrupt"):
            fresh.read_fold(record.key)

    def test_schema_malformed_shard_is_treated_as_pending(
        self, tiny_data, tmp_path
    ):
        """A shard that parses as JSON but has the wrong shape (foreign
        file, partial hand edit) must read as pending, not crash resume."""
        store = _store(tiny_data, root=tmp_path / "proto")
        record = _record()
        store.write_fold(record)
        path = store._fold_path(record.key)
        for malformed in (
            '{"not": "a shard"}',
            '{"protocol_fingerprint": "%s", "record": {"variant": "base"}}'
            % store.protocol_fingerprint,
            "[]",
        ):
            path.write_text(malformed)
            fresh = _store(tiny_data, root=tmp_path / "proto")
            assert not fresh.has_fold(record.key)
            assert record.key in fresh.pending_keys()

    def test_reopen_rejects_different_protocol(self, tiny_data, tmp_path):
        _store(tiny_data, root=tmp_path / "proto")
        variants = _variants(tiny_data)
        with pytest.raises(FoldStoreError, match="different protocol"):
            FoldStore(
                "0" * 16,
                variants,
                list(tiny_data.training.program_names),
                root=tmp_path / "proto",
            )

    def test_foreign_record_rejected(self, tiny_data):
        store = _store(tiny_data)
        with pytest.raises(FoldStoreError, match="not in this protocol grid"):
            store.write_fold(_record(variant="no-such-variant"))

    def test_fold_keys_subset_and_status(self, tiny_data):
        store = _store(tiny_data)
        base_keys = list(store.fold_keys(["base"]))
        assert [key.variant for key in base_keys] == ["base"] * len(
            store.programs
        )
        status = store.status()
        assert status.total_folds == store.n_folds
        assert status.completed_folds == 0
        assert not status.complete
        assert "pending" in status.render()


class TestRuntimeOracle:
    def test_grid_setting_is_a_store_hit(self, tiny_data):
        oracle = RuntimeOracle(tiny_data.training, tiny_data.programs)
        program = tiny_data.training.program_names[1]
        machine = tiny_data.training.machines[3]
        setting = tiny_data.training.settings[7]
        expected = float(tiny_data.training.runtimes[1, 7, 3])
        assert oracle.runtime(program, setting, machine) == expected
        assert oracle.store_hits == 1
        assert oracle.simulation_calls == 0

    def test_out_of_grid_setting_simulates_once(self, tiny_data):
        from repro.compiler.flags import o3_setting

        oracle = RuntimeOracle(tiny_data.training, tiny_data.programs)
        program = tiny_data.training.program_names[0]
        machine = tiny_data.training.machines[0]
        synthetic = o3_setting().with_values(
            funroll_loops=True, param_max_unroll_times=16
        )
        first = oracle.runtime(program, synthetic, machine)
        second = oracle.runtime(program, synthetic, machine)
        assert first == second
        assert oracle.simulation_calls == 1  # memoised, not re-simulated

    def test_unknown_program_and_machine_rejected(self, tiny_data):
        from repro.evalrun.oracle import OracleError
        from repro.machine.xscale import xscale

        oracle = RuntimeOracle(tiny_data.training, tiny_data.programs)
        with pytest.raises(OracleError, match="unknown program"):
            oracle.o3_runtime("nonesuch", tiny_data.training.machines[0])
        with pytest.raises(OracleError, match="not in the training grid"):
            oracle.o3_runtime(tiny_data.training.program_names[0], xscale())


#: A small artifact subset: base + the K sweep — 6 variants × 6 programs.
SUBSET = "headline,ablate-k"


class TestPipelineDeterminism:
    def _report_bytes(self, tiny_data, executor, jobs):
        store = _store(tiny_data)
        pipeline = _pipeline(tiny_data, store, jobs=jobs, executor=executor)
        keys = variants_for_artifacts(resolve_artifacts(SUBSET))
        pipeline.run(variants=keys)
        protocol = pipeline.assemble(variants=keys)
        report = render_report(tiny_data, protocol, only=SUBSET)
        return protocol.fold_fingerprint, report.markdown, report.json_text()

    def test_bit_identical_across_executors(self, tiny_data):
        serial = self._report_bytes(tiny_data, "serial", 1)
        thread = self._report_bytes(tiny_data, "thread", 4)
        process = self._report_bytes(tiny_data, "process", 2)
        assert serial == thread == process

    def test_kill_and_resume_is_bit_identical_with_zero_resim(self, tiny_data):
        keys = variants_for_artifacts(resolve_artifacts(SUBSET))
        single_shot = self._report_bytes(tiny_data, "serial", 1)

        # "Kill" after 4 checkpointed folds, then resume with a fresh
        # pipeline (fresh oracle, fresh predictors — as after a real kill).
        store = _store(tiny_data)
        first = _pipeline(tiny_data, store).run(variants=keys, max_folds=4)
        assert first.folds_computed == 4
        resumed = _pipeline(tiny_data, store)
        stats = resumed.run(variants=keys)
        assert stats.folds_skipped == 4  # checkpointed folds never rerun
        protocol = resumed.assemble(variants=keys)
        report = render_report(tiny_data, protocol, only=SUBSET)
        assert (
            protocol.fold_fingerprint,
            report.markdown,
            report.json_text(),
        ) == single_shot

        # A second resume finds everything checkpointed: zero folds,
        # zero simulations — the re-simulation counter stays at rest.
        final = _pipeline(tiny_data, store)
        stats = final.run(variants=keys)
        assert stats.folds_computed == 0
        assert stats.simulation_calls == 0
        assert stats.store_hits == 0

    def test_resume_never_resimulates_checkpointed_folds(
        self, tiny_data, monkeypatch
    ):
        """Belt and braces for the counter: patch the simulator itself
        and assert a fully checkpointed store triggers no calls."""
        store = _store(tiny_data)
        keys = variants_for_artifacts(resolve_artifacts(SUBSET))
        _pipeline(tiny_data, store).run(variants=keys)

        import repro.evalrun.oracle as oracle_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("checkpointed fold was re-simulated")

        monkeypatch.setattr(oracle_module, "simulate_analytic", boom)
        stats = _pipeline(tiny_data, store).run(variants=keys)
        assert stats.folds_computed == 0
        protocol = assemble_protocol(store, tiny_data.training, variants=keys)
        assert render_report(tiny_data, protocol, only=SUBSET).markdown

    def test_store_hits_feed_joint_variant_from_grid(self, tiny_data):
        """The joint-vote variant predicts observed grid settings, so its
        folds are priced from the store without a single simulation."""
        store = _store(tiny_data)
        pipeline = _pipeline(tiny_data, store)
        stats = pipeline.run(variants=["joint"])
        assert stats.folds_computed == len(store.programs)
        assert stats.store_hits > 0
        assert stats.simulation_calls == 0


class TestRunProtocolSession:
    def test_session_protocol_end_to_end(self, tiny_protocol):
        report = tiny_protocol.report
        assert tiny_protocol.complete
        assert report.artifacts == list(resolve_artifacts(None))
        assert "# Paper protocol report" in report.markdown
        payload = json.loads(report.json_text())
        assert payload["scale"] == "tiny"
        assert set(payload["artifacts"]) == set(report.artifacts)
        assert payload["headline"]["mean_best_speedup"] >= 1.0

    def test_figures_consume_pipeline_output(self, tiny_data, tiny_protocol):
        """After run_protocol, run_crossval serves the checkpointed base
        variant — figures and tables consume pipeline output."""
        from repro.experiments.figures import run_crossval

        assert run_crossval(tiny_data) is tiny_protocol.report.protocol.base

    def test_max_folds_cap_returns_incomplete(self, tiny_data):
        session = Session("tiny", use_disk_cache=False)
        store = session.protocol_store(tiny_data)
        outcome = session.run_protocol(
            only=SUBSET, max_folds=2, store=store
        )
        assert not outcome.complete
        assert outcome.report is None
        assert outcome.stats.folds_computed == 2
        assert outcome.status.completed_folds == 2

    def test_only_subset_runs_no_extra_folds(self, tiny_data):
        session = Session("tiny", use_disk_cache=False)
        store = session.protocol_store(tiny_data)
        outcome = session.run_protocol(only="fig4,table2", store=store)
        assert outcome.complete
        # fig4/table2 need no folds at all: nothing computed, nothing
        # simulated, and the report still renders.
        assert outcome.stats.folds_computed == 0
        assert outcome.stats.simulation_calls == 0
        assert outcome.report.artifacts == ["table2", "fig4"]


class TestReportRenderer:
    def test_resolve_artifacts_aliases_and_order(self):
        assert resolve_artifacts("figure5,table2") == ["table2", "fig5"]
        assert resolve_artifacts(["HEADLINE"]) == ["headline"]
        with pytest.raises(ValueError, match="unknown artifact"):
            resolve_artifacts("fig99")

    def test_variants_for_artifacts(self):
        assert variants_for_artifacts(["fig4", "table2"]) == []
        knn = variants_for_artifacts(["ablate-k"])
        assert knn[0] == "base"
        assert set(knn) == {"base", "k-1", "k-3", "k-5", "k-11", "k-15"}

    def test_report_refuses_missing_variants(self, tiny_data):
        store = _store(tiny_data)
        pipeline = _pipeline(tiny_data, store)
        pipeline.run(variants=["base"])
        protocol = pipeline.assemble(variants=["base"])
        with pytest.raises(ValueError, match="needs protocol variants"):
            render_report(tiny_data, protocol, only="ablate-k")
        # While the base-only artifacts render fine.
        report = render_report(tiny_data, protocol, only="fig6,headline")
        assert report.artifacts == ["fig6", "headline"]

    def test_ablation_tables_match_direct_sweeps(self, tiny_data, tiny_protocol):
        """The report's ablation tables, assembled from checkpointed
        folds, carry exactly the numbers of the in-process sweeps."""
        from repro.experiments.ablations import knn_k_sweep

        direct = knn_k_sweep(tiny_data)
        rendered = tiny_protocol.report.payload["artifacts"]["ablate-k"]["render"]
        assert rendered == direct.render()


class TestReportCli:
    def test_report_cap_then_resume_matches_single_shot(
        self, tiny_data, tmp_path, capsys
    ):
        cache_a, cache_b = str(tmp_path / "a"), str(tmp_path / "b")
        out_a, out_b = tmp_path / "outA", tmp_path / "outB"
        args = ["report", "--scale", "tiny", "--quiet", "--only", SUBSET]
        assert cli.main(args + ["--cache-dir", cache_a, "--out", str(out_a)]) == 0
        # Killed run: capped, then resumed in a separate cache.
        assert (
            cli.main(
                args
                + ["--cache-dir", cache_b, "--out", str(out_b), "--max-folds", "3"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "resume with:" in output
        assert not (out_b / "report-tiny.md").exists()
        assert (
            cli.main(
                args + ["--cache-dir", cache_b, "--out", str(out_b), "--resume"]
            )
            == 0
        )
        assert (out_a / "report-tiny.md").read_bytes() == (
            out_b / "report-tiny.md"
        ).read_bytes()
        assert (out_a / "report-tiny.json").read_bytes() == (
            out_b / "report-tiny.json"
        ).read_bytes()

    def test_completed_only_run_rerenders_without_resume(
        self, tiny_data, tmp_path
    ):
        """A finished --only selection is complete for what it needs:
        re-invoking the identical command re-renders without --resume,
        and widening the selection demands --resume (its folds are a
        partially computed superset)."""
        cache = str(tmp_path / "cache")
        args = ["report", "--scale", "tiny", "--quiet", "--only", "headline",
                "--cache-dir", cache, "--out", str(tmp_path)]
        assert cli.main(args) == 0
        assert cli.main(args) == 0  # complete for 'headline': no --resume
        with pytest.raises(SystemExit):  # wider selection: partial now
            cli.main(
                ["report", "--scale", "tiny", "--quiet", "--only", SUBSET,
                 "--cache-dir", cache, "--out", str(tmp_path)]
            )

    def test_incomplete_hint_echoes_selection_flags(self, tiny_data, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert (
            cli.main(
                ["report", "--scale", "tiny", "--quiet", "--only", SUBSET,
                 "--cache-dir", cache, "--out", str(tmp_path / "out"),
                 "--max-folds", "2", "--jobs", "2", "--executor", "thread"]
            )
            == 0
        )
        hint = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("resume with:")
        ][0]
        for fragment in (f"--only {SUBSET}", "--jobs 2", "--executor thread",
                         f"--cache-dir {cache}", "--out"):
            assert fragment in hint

    def test_report_refuses_partial_store_without_resume(
        self, tiny_data, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert (
            cli.main(
                ["report", "--scale", "tiny", "--quiet", "--only", SUBSET,
                 "--cache-dir", cache, "--out", str(tmp_path), "--max-folds", "2"]
            )
            == 0
        )
        with pytest.raises(SystemExit):
            cli.main(
                ["report", "--scale", "tiny", "--quiet", "--only", SUBSET,
                 "--cache-dir", cache, "--out", str(tmp_path)]
            )

    def test_report_flags_rejected_outside_report(self, tmp_path):
        for flags in (["--max-folds", "2"], ["--only", "fig4"], ["--out", "x"]):
            with pytest.raises(SystemExit):
                cli.main(["fig3", "--quiet", *flags])
        with pytest.raises(SystemExit):
            cli.main(["report", "--scale", "tiny", "--max-folds", "0",
                      "--cache-dir", str(tmp_path)])
