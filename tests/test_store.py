"""Tests for the sharded, resumable experiment store (repro.store)."""

import json
import threading

import numpy as np
import pytest

from repro.compiler.pipeline import Compiler
from repro.core.training import generate_training_set
from repro.experiments.config import Scale
from repro.experiments.dataset import (
    _legacy_path,
    _save,
    clear_memory_cache,
    experiment_store,
    grid_for_scale,
    load_or_build,
    store_root,
    store_status,
)
from repro.programs.mibench import mibench_program
from repro.store import (
    ExperimentRunner,
    ExperimentStore,
    GridSpec,
    ShardKey,
    StoreError,
    compute_shard,
    shard_fingerprint,
)

#: Small enough to build many times per test run, big enough to have
#: several shards per program (4 machines / chunk 2 = 2 chunks).
SMOKE = Scale(name="smoke", programs=("crc", "search"), n_machines=4, n_settings=6)


@pytest.fixture(scope="module")
def smoke_grid():
    return grid_for_scale(SMOKE, chunk_machines=2)


@pytest.fixture(scope="module")
def smoke_programs():
    return [mibench_program(name) for name in SMOKE.programs]


@pytest.fixture(scope="module")
def smoke_reference(smoke_grid, smoke_programs):
    """The monolithic (non-sharded) training set the store must match."""
    return generate_training_set(
        smoke_programs,
        list(smoke_grid.machines),
        n_settings=SMOKE.n_settings,
        seed=SMOKE.setting_seed,
        extended=SMOKE.extended,
    )


class TestGridSpec:
    def test_geometry(self, smoke_grid):
        assert smoke_grid.n_chunks == 2
        assert smoke_grid.n_shards == 4
        assert smoke_grid.chunk_range(0) == (0, 2)
        assert smoke_grid.chunk_range(1) == (2, 4)
        assert list(smoke_grid.shard_keys()) == [
            ShardKey(0, 0),
            ShardKey(0, 1),
            ShardKey(1, 0),
            ShardKey(1, 1),
        ]

    def test_ragged_last_chunk(self):
        grid = grid_for_scale(
            Scale(name="smoke", programs=("crc",), n_machines=5, n_settings=2),
            chunk_machines=2,
        )
        assert grid.n_chunks == 3
        assert grid.chunk_range(2) == (4, 5)
        assert len(grid.chunk_of(ShardKey(0, 2))) == 1

    def test_fingerprint_ignores_chunking(self, smoke_grid):
        other = grid_for_scale(SMOKE, chunk_machines=3)
        assert other.chunk_machines != smoke_grid.chunk_machines
        assert other.fingerprint() == smoke_grid.fingerprint()

    def test_fingerprint_covers_grid_content(self, smoke_grid):
        bigger = grid_for_scale(
            Scale(
                name="smoke",
                programs=SMOKE.programs,
                n_machines=SMOKE.n_machines + 1,
                n_settings=SMOKE.n_settings,
            )
        )
        assert bigger.fingerprint() != smoke_grid.fingerprint()

    def test_empty_grid_rejected(self, smoke_grid):
        with pytest.raises(ValueError):
            GridSpec(program_names=(), machines=smoke_grid.machines,
                     settings=smoke_grid.settings)
        with pytest.raises(ValueError):
            GridSpec(
                program_names=smoke_grid.program_names,
                machines=smoke_grid.machines,
                settings=smoke_grid.settings,
                chunk_machines=0,
            )


class TestExperimentStore:
    def test_shard_roundtrip_and_digest(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        key = ShardKey(0, 1)
        arrays = compute_shard(
            smoke_programs[0], smoke_grid.chunk_of(key), smoke_grid.settings
        )
        store.write_shard(key, arrays)
        assert store.has_shard(key)
        back = store.read_shard(key)
        for written, read in zip(arrays, back):
            assert np.array_equal(written, read)
        assert store.shard_digest(key) == shard_fingerprint(arrays)

    def test_corrupt_shard_detected(self, tmp_path, smoke_grid, smoke_programs):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        key = ShardKey(0, 0)
        store.write_shard(
            key,
            compute_shard(
                smoke_programs[0], smoke_grid.chunk_of(key), smoke_grid.settings
            ),
        )
        npz_path, _ = store._shard_paths(key)
        other = ShardKey(0, 1)
        np.savez(
            npz_path,
            runtimes=np.ones((smoke_grid.n_settings, 2)),
            o3_runtimes=np.ones(2),
            counters=np.ones((2, 11)),
            code_features=np.ones(4),
        )
        with pytest.raises(StoreError, match="corrupt"):
            store.read_shard(key)
        assert not store.has_shard(other)

    def test_append_only_first_write_wins(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        key = ShardKey(1, 0)
        arrays = compute_shard(
            smoke_programs[1], smoke_grid.chunk_of(key), smoke_grid.settings
        )
        store.write_shard(key, arrays)
        digest = store.shard_digest(key)
        doctored = tuple(array * 2.0 for array in arrays)
        store.write_shard(key, doctored)  # silently ignored
        assert store.shard_digest(key) == digest
        assert np.array_equal(store.read_shard(key)[0], arrays[0])

    def test_shape_validation(self, tmp_path, smoke_grid):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        bad = (
            np.ones((1, 1)),
            np.ones(2),
            np.ones((2, 11)),
            np.ones(4),
        )
        with pytest.raises(ValueError, match="shape"):
            store.write_shard(ShardKey(0, 0), bad)

    def test_manifest_rejects_other_grid(self, tmp_path, smoke_grid):
        root = tmp_path / "store"
        ExperimentStore(smoke_grid, root=root)
        other = grid_for_scale(
            Scale(
                name="smoke",
                programs=("crc",),
                n_machines=4,
                n_settings=6,
            )
        )
        with pytest.raises(StoreError, match="different grid"):
            ExperimentStore(other, root=root)

    def test_reopen_adopts_manifest_chunking(self, tmp_path, smoke_grid):
        root = tmp_path / "store"
        ExperimentStore(smoke_grid, root=root)  # chunk_machines=2
        reopened = ExperimentStore(
            grid_for_scale(SMOKE, chunk_machines=3), root=root
        )
        assert reopened.grid.chunk_machines == 2

    def test_open_from_manifest_alone(self, tmp_path, smoke_grid):
        root = tmp_path / "store"
        ExperimentStore(smoke_grid, root=root)
        reopened = ExperimentStore.open(root)
        assert reopened.grid == smoke_grid
        with pytest.raises(StoreError, match="manifest"):
            ExperimentStore.open(tmp_path / "nowhere")

    def test_assemble_requires_completion(self, tmp_path, smoke_grid):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        with pytest.raises(StoreError, match="incomplete"):
            store.assemble()
        with pytest.raises(StoreError, match="missing"):
            store.fingerprint()

    def test_status_reports_progress(self, tmp_path, smoke_grid, smoke_programs):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        key = ShardKey(0, 0)
        store.write_shard(
            key,
            compute_shard(
                smoke_programs[0], smoke_grid.chunk_of(key), smoke_grid.settings
            ),
        )
        status = store.status()
        assert status.total_shards == 4
        assert status.completed_shards == 1
        assert not status.complete
        assert status.per_program["crc"] == (1, 2)
        assert status.per_program["search"] == (0, 2)
        assert "1/4" in status.render()

    def test_status_of_pinned_but_unbuilt_store(self, tmp_path, smoke_grid):
        """A store with a manifest but zero shards used to render a
        misleading '0/0 complete'; it must say the grid is pinned and
        never divide by zero."""
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        status = store.status()
        assert status.total_shards == 4
        assert status.completed_shards == 0
        assert status.fraction == 0.0
        rendered = status.render()
        assert "grid pinned, no shards built (0/4)" in rendered
        assert "0/0" not in rendered
        assert "%" not in rendered.split("shards:")[1].splitlines()[0]

    def test_memory_store_isolated_from_caller_arrays(
        self, smoke_grid, smoke_programs
    ):
        """Shards are copies: mutating the writer's (or a consumer's)
        arrays afterwards must not change the store's content."""
        store = ExperimentStore(smoke_grid, root=None)
        key = ShardKey(0, 0)
        arrays = compute_shard(
            smoke_programs[0], smoke_grid.chunk_of(key), smoke_grid.settings
        )
        store.write_shard(key, arrays)
        digest = store.shard_digest(key)
        arrays[0][:] = -1.0  # caller trashes its own copy
        assert store.shard_digest(key) == digest
        assert (store.read_shard(key)[0] > 0).all()

    def test_memory_store_same_api(self, smoke_grid, smoke_programs):
        store = ExperimentStore(smoke_grid, root=None)
        assert store.pending_keys() == list(smoke_grid.shard_keys())
        runner = ExperimentRunner(store, programs=smoke_programs)
        assert runner.run() == 4
        assert store.is_complete()
        assert store.status().root == "<memory>"
        training = store.assemble()
        assert training.runtimes.shape == (2, 6, 4)


class TestRunnerEquivalence:
    """Sharded/resumed/parallel builds must be bit-identical to monolithic."""

    def test_assembled_matches_monolithic(
        self, tmp_path, smoke_grid, smoke_programs, smoke_reference
    ):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        training = ExperimentRunner(
            store, programs=smoke_programs
        ).run_to_completion()
        assert training.fingerprint() == smoke_reference.fingerprint()
        assert np.array_equal(training.runtimes, smoke_reference.runtimes)
        assert np.array_equal(training.counters, smoke_reference.counters)
        assert np.array_equal(
            training.code_features, smoke_reference.code_features
        )
        assert training.metadata == smoke_reference.metadata

    def test_chunking_does_not_change_dataset(
        self, tmp_path, smoke_programs, smoke_reference
    ):
        for chunk in (1, 3, 16):
            grid = grid_for_scale(SMOKE, chunk_machines=chunk)
            store = ExperimentStore(grid, root=tmp_path / f"store-{chunk}")
            training = ExperimentRunner(
                store, programs=smoke_programs
            ).run_to_completion()
            assert training.fingerprint() == smoke_reference.fingerprint()

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_kill_and_resume_equivalence(
        self, tmp_path, smoke_grid, smoke_programs, smoke_reference, executor
    ):
        """The ISSUE's acceptance criterion: abort mid-grid, resume, and
        the final store fingerprint matches an uninterrupted run."""
        uninterrupted = ExperimentStore(smoke_grid, root=tmp_path / "oneshot")
        ExperimentRunner(
            uninterrupted, programs=smoke_programs, jobs=2, executor=executor
        ).run()

        root = tmp_path / f"resumed-{executor}"
        interrupted = ExperimentStore(smoke_grid, root=root)
        runner = ExperimentRunner(
            interrupted, programs=smoke_programs, jobs=2, executor=executor
        )
        # "Kill" the run after one shard per call by capping the grid walk.
        calls = 0
        while not interrupted.is_complete():
            done = runner.run(max_shards=1)
            assert done == 1
            calls += 1
            # A fresh store object stands in for a restarted process.
            interrupted = ExperimentStore(smoke_grid, root=root)
            runner = ExperimentRunner(
                interrupted, programs=smoke_programs, jobs=2, executor=executor
            )
        assert calls == smoke_grid.n_shards
        assert interrupted.fingerprint() == uninterrupted.fingerprint()
        assert (
            interrupted.assemble().fingerprint()
            == uninterrupted.assemble().fingerprint()
            == smoke_reference.fingerprint()
        )

    def test_resume_skips_completed_shards(
        self, tmp_path, smoke_grid, smoke_programs
    ):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        runner = ExperimentRunner(store, programs=smoke_programs)
        assert runner.run(max_shards=3) == 3
        assert len(store.completed_keys()) == 3
        assert runner.run() == 1  # only the one pending shard is recomputed
        assert runner.run() == 0  # complete store: nothing to do

    def test_runner_rejects_misaligned_programs(self, smoke_grid, smoke_programs):
        store = ExperimentStore(smoke_grid, root=None)
        with pytest.raises(ValueError, match="mismatch"):
            ExperimentRunner(store, programs=list(reversed(smoke_programs)))
        with pytest.raises(ValueError, match="programs"):
            ExperimentRunner(store, programs=smoke_programs[:1])
        with pytest.raises(ValueError, match="executor"):
            ExperimentRunner(store, programs=smoke_programs, executor="gpu")


class TestDatasetIntegration:
    def test_load_or_build_uses_store(self, tmp_path):
        clear_memory_cache()
        try:
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            root = store_root(SMOKE, tmp_path)
            assert root.exists()
            store = experiment_store(SMOKE, tmp_path)
            assert store.is_complete()
            assert (
                store.assemble().fingerprint() == data.training.fingerprint()
            )
        finally:
            clear_memory_cache()

    def test_load_or_build_resumes_partial_store(self, tmp_path, smoke_programs):
        clear_memory_cache()
        try:
            store = experiment_store(SMOKE, tmp_path)
            ExperimentRunner(store, programs=smoke_programs).run(max_shards=1)
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            assert experiment_store(SMOKE, tmp_path).is_complete()
            assert data.training.runtimes.shape == (2, 6, 4)
        finally:
            clear_memory_cache()

    def test_legacy_single_file_cache_still_readable(
        self, tmp_path, smoke_reference
    ):
        clear_memory_cache()
        try:
            _save(_legacy_path(SMOKE, tmp_path), smoke_reference)
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            # Served from the legacy file: not even an empty store
            # directory is created as a side effect.
            assert not store_root(SMOKE, tmp_path).exists()
            assert data.training.fingerprint() == smoke_reference.fingerprint()
        finally:
            clear_memory_cache()

    def test_partial_store_beats_legacy_file(
        self, tmp_path, smoke_programs, smoke_reference
    ):
        """Shards already computed win over the legacy fallback — their
        work is finished rather than thrown away."""
        clear_memory_cache()
        try:
            doctored = smoke_reference.runtimes.copy()
            doctored[0, 0, 0] *= 2.0  # distinguishable legacy content
            import dataclasses as dc

            legacy = dc.replace(smoke_reference, runtimes=doctored)
            _save(_legacy_path(SMOKE, tmp_path), legacy)
            store = experiment_store(SMOKE, tmp_path)
            ExperimentRunner(store, programs=smoke_programs).run(max_shards=1)
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            assert data.training.fingerprint() == smoke_reference.fingerprint()
        finally:
            clear_memory_cache()

    def test_empty_store_dir_adopts_matching_legacy(
        self, tmp_path, smoke_reference
    ):
        """A store directory with zero shards (e.g. from a status-less
        'run' that died instantly) absorbs the legacy cache on load."""
        clear_memory_cache()
        try:
            _save(_legacy_path(SMOKE, tmp_path), smoke_reference)
            experiment_store(SMOKE, tmp_path)  # materialise an empty store
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            assert data.training.fingerprint() == smoke_reference.fingerprint()
            assert experiment_store(SMOKE, tmp_path).is_complete()
        finally:
            clear_memory_cache()

    def test_adopt_legacy_cache_helper(self, tmp_path, smoke_reference):
        """The helper the CLI 'run' command uses to absorb legacy caches."""
        from repro.experiments.dataset import adopt_legacy_cache

        _save(_legacy_path(SMOKE, tmp_path), smoke_reference)
        store = experiment_store(SMOKE, tmp_path)
        assert adopt_legacy_cache(SMOKE, store, tmp_path) == store.grid.n_shards
        assert store.is_complete()
        assert adopt_legacy_cache(SMOKE, store, tmp_path) == 0

    def test_partial_store_adopts_matching_legacy(
        self, tmp_path, smoke_programs, smoke_reference
    ):
        """A legacy cache whose grid matches fills a partial store's
        pending shards instead of being recomputed."""
        clear_memory_cache()
        try:
            _save(_legacy_path(SMOKE, tmp_path), smoke_reference)
            store = experiment_store(SMOKE, tmp_path)
            ExperimentRunner(store, programs=smoke_programs).run(max_shards=1)
            data = load_or_build(SMOKE, cache_directory=tmp_path)
            assert data.training.fingerprint() == smoke_reference.fingerprint()
            # The store was completed by adoption, not left partial.
            assert experiment_store(SMOKE, tmp_path).is_complete()
        finally:
            clear_memory_cache()

    def test_concurrent_sessions_build_once(self, tmp_path):
        clear_memory_cache()
        try:
            results = []
            errors = []

            def build():
                try:
                    results.append(load_or_build(SMOKE, cache_directory=tmp_path))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=build) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(results) == 4
            # All sessions share the single memoised build.
            assert all(data is results[0] for data in results)
        finally:
            clear_memory_cache()

    def test_store_status_is_read_only(self, tmp_path):
        status = store_status(SMOKE, tmp_path / "cache")
        assert status.completed_shards == 0
        assert status.total_shards == grid_for_scale(SMOKE).n_shards
        assert not status.complete
        # A status query must not create the store as a side effect.
        assert not (tmp_path / "cache").exists()

    def test_session_without_disk_cache_touches_no_disk(self, tmp_path):
        from repro.api import Session

        session = Session(SMOKE, use_disk_cache=False, cache_dir=tmp_path / "c")
        assert session.experiment_store().root is None
        status = session.dataset_status()
        assert status.root == "<memory>"
        assert not (tmp_path / "c").exists()

    def test_session_memory_store_persists_partial_progress(self, tmp_path):
        """build_dataset progress with use_disk_cache=False survives into
        dataset_status and is finished (not redone) by dataset()."""
        from repro.api import Session

        clear_memory_cache()
        try:
            session = Session(
                SMOKE, use_disk_cache=False, cache_dir=tmp_path / "c"
            )
            assert session.build_dataset(max_shards=1) == 1
            assert session.dataset_status().completed_shards == 1
            store = session.experiment_store()
            data = session.dataset()
            # The session's own store was completed in place.
            assert store.is_complete()
            assert (
                data.training.fingerprint() == store.assemble().fingerprint()
            )
            assert not (tmp_path / "c").exists()
        finally:
            clear_memory_cache()

    def test_adopt_matches_computed_shards(
        self, tmp_path, smoke_grid, smoke_programs, smoke_reference
    ):
        """adopt() slices a monolithic build into shards bit-identical to
        directly computed ones (same digests, same store fingerprint)."""
        computed = ExperimentStore(smoke_grid, root=tmp_path / "computed")
        ExperimentRunner(computed, programs=smoke_programs).run()
        adopted = ExperimentStore(smoke_grid, root=tmp_path / "adopted")
        assert adopted.adopt(smoke_reference) == smoke_grid.n_shards
        assert adopted.fingerprint() == computed.fingerprint()
        assert adopted.adopt(smoke_reference) == 0  # idempotent

    def test_adopt_rejects_mismatched_grid(self, smoke_reference):
        other = grid_for_scale(
            Scale(name="smoke", programs=("crc",), n_machines=4, n_settings=6)
        )
        store = ExperimentStore(other, root=None)
        with pytest.raises(StoreError, match="grid"):
            store.adopt(smoke_reference)

    def test_second_memoryless_session_stays_consistent(self):
        """A session served another session's memoised dataset still ends
        with its own store complete (dataset/status/build agree)."""
        from repro.api import Session

        clear_memory_cache()
        try:
            first = Session(SMOKE, use_disk_cache=False)
            second = Session(SMOKE, use_disk_cache=False)
            data1 = first.dataset()
            data2 = second.dataset()
            assert data2 is data1  # module memo shared across sessions
            assert second.dataset_status().complete
            assert second.build_dataset() == 0  # nothing left to compute
            assert (
                second.experiment_store().assemble().fingerprint()
                == data1.training.fingerprint()
            )
        finally:
            clear_memory_cache()

    def test_manifest_is_json_readable(self, tmp_path, smoke_grid):
        store = ExperimentStore(smoke_grid, root=tmp_path / "store")
        manifest = json.loads((store.root / "manifest.json").read_text())
        assert manifest["grid_fingerprint"] == smoke_grid.fingerprint()
        assert manifest["chunk_machines"] == 2
        assert len(manifest["machines"]) == 4
