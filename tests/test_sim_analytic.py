"""Tests for the analytic executor (repro.sim.analytic)."""

import dataclasses

import pytest

from repro.compiler.binary import LoopSummary, RegionAccess
from repro.compiler.flags import o3_setting
from repro.compiler.pipeline import Compiler
from repro.machine.params import MicroArch
from repro.machine.xscale import xscale, xscale_small_icache
from repro.sim.analytic import (
    access_dcache_misses,
    effective_capacity,
    loop_icache_misses,
    simulate_analytic,
)
from repro.sim.counters import COUNTER_NAMES
from tests.conftest import simple_loop_program


def _machine(**overrides) -> MicroArch:
    base = dict(
        il1_size=32768,
        il1_assoc=32,
        il1_block=32,
        dl1_size=32768,
        dl1_assoc=32,
        dl1_block=32,
        btb_entries=512,
        btb_assoc=1,
    )
    base.update(overrides)
    return MicroArch(**base)


def _loop(code_bytes: int, iterations: float = 1e4, entries: float = 1.0):
    return LoopSummary(
        function="main",
        header="hdr",
        depth=1,
        parent=None,
        iterations=iterations,
        entries=entries,
        code_bytes=code_bytes,
        own_dyn_insns=iterations * code_bytes / 4,
    )


class TestEffectiveCapacity:
    def test_higher_associativity_keeps_more(self):
        assert effective_capacity(4096, 64) > effective_capacity(4096, 4)

    def test_below_raw_size(self):
        assert effective_capacity(4096, 8) < 4096


class TestLoopIcacheModel:
    def test_fitting_loop_pays_cold_only(self):
        misses = loop_icache_misses(_loop(1024, iterations=1e6), 3584.0, 32)
        assert misses <= 1024 / 32 * 1.05

    def test_overflowing_loop_thrashes(self):
        fitting = loop_icache_misses(_loop(3000, iterations=1e5), 3584.0, 32)
        thrashing = loop_icache_misses(_loop(8000, iterations=1e5), 3584.0, 32)
        assert thrashing > 100 * fitting

    def test_thrash_grows_with_overflow(self):
        small = loop_icache_misses(_loop(4000, iterations=1e5), 3584.0, 32)
        large = loop_icache_misses(_loop(6500, iterations=1e5), 3584.0, 32)
        assert large > small

    def test_reentry_leak_charged_without_resident_parent(self):
        lonely = loop_icache_misses(
            _loop(1024, iterations=1e4, entries=1000.0), 3584.0, 32
        )
        nested = loop_icache_misses(
            _loop(1024, iterations=1e4, entries=1000.0),
            3584.0,
            32,
            parent_resident=True,
        )
        assert lonely > nested


class TestDcacheModel:
    def _access(self, kind, region_bytes, stride, count=1e5, is_store=False):
        return RegionAccess(
            region="r",
            kind=kind,
            region_bytes=region_bytes,
            stride=stride,
            count=count,
            is_store=is_store,
        )

    def test_stream_single_pass_compulsory(self):
        access = self._access("stream", region_bytes=1 << 20, stride=4, count=1e4)
        misses = access_dcache_misses(access, iterations=1e4, capacity=28672, block_bytes=32)
        assert misses == pytest.approx(1e4 * 4 / 32)

    def test_wrapping_stream_hits_when_resident(self):
        access = self._access("stream", region_bytes=8192, stride=4, count=1e6)
        misses = access_dcache_misses(access, iterations=1e6, capacity=28672, block_bytes=32)
        # Region fits: only the compulsory pass misses.
        assert misses == pytest.approx(8192 / 32)

    def test_wrapping_stream_misses_when_oversized(self):
        access = self._access("stream", region_bytes=1 << 20, stride=4, count=1e7)
        misses = access_dcache_misses(access, iterations=1e7, capacity=28672, block_bytes=32)
        assert misses > 1e5

    def test_large_stride_misses_every_access(self):
        access = self._access("stream", region_bytes=1 << 20, stride=64, count=1e4)
        misses = access_dcache_misses(access, iterations=1e4, capacity=28672, block_bytes=32)
        assert misses == pytest.approx(1e4)

    def test_table_locality_discount(self):
        table = self._access("table", region_bytes=1 << 18, stride=0, count=1e5)
        chase = self._access("chase", region_bytes=1 << 18, stride=0, count=1e5)
        capacity = 28672.0
        assert access_dcache_misses(
            table, 1e5, capacity, 32
        ) < access_dcache_misses(chase, 1e5, capacity, 32)

    def test_resident_table_no_misses(self):
        table = self._access("table", region_bytes=1024, stride=0, count=1e5)
        assert access_dcache_misses(table, 1e5, 28672.0, 32) == pytest.approx(0.0)

    def test_stack_compulsory_only(self):
        stack = self._access("stack", region_bytes=4096, stride=0, count=1e6)
        assert access_dcache_misses(stack, 1e6, 28672.0, 32) <= 4096 / 32

    def test_unknown_kind_rejected(self):
        bogus = dataclasses.replace(self._access("stream", 1024, 4), kind="heap")
        with pytest.raises(ValueError):
            access_dcache_misses(bogus, 1e4, 28672.0, 32)


class TestSimulateAnalytic:
    @pytest.fixture()
    def binary(self, compiler, o3):
        return compiler.compile(simple_loop_program(), o3)

    def test_breakdown_sums_to_cycles(self, binary, machine):
        result = simulate_analytic(binary, machine)
        assert result.cycles == pytest.approx(result.breakdown.total())

    def test_seconds_from_cycles_and_clock(self, binary, machine):
        result = simulate_analytic(binary, machine)
        assert result.seconds == pytest.approx(result.cycles * 2.5e-9)

    def test_counters_well_formed(self, binary, machine):
        counters = simulate_analytic(binary, machine).counters
        vector = counters.vector()
        assert len(vector) == len(COUNTER_NAMES)
        assert 0 < counters.ipc <= 2.0
        assert 0 <= counters.icache_miss_rate <= 1
        assert 0 <= counters.dcache_miss_rate <= 1
        assert counters.alu_usage + counters.mac_usage + counters.shift_usage <= 1.0

    def test_deterministic(self, binary, machine):
        one = simulate_analytic(binary, machine)
        two = simulate_analytic(binary, machine)
        assert one.cycles == two.cycles

    def test_dual_issue_faster(self, binary):
        narrow = simulate_analytic(binary, _machine(issue_width=1))
        wide = simulate_analytic(binary, _machine(issue_width=2))
        assert wide.cycles < narrow.cycles

    def test_dual_issue_less_than_double(self, binary):
        narrow = simulate_analytic(binary, _machine(issue_width=1))
        wide = simulate_analytic(binary, _machine(issue_width=2))
        assert wide.cycles > narrow.cycles / 2

    def test_frequency_cancels_partially_in_runtime(self, binary):
        slow = simulate_analytic(binary, _machine(frequency_mhz=200))
        fast = simulate_analytic(binary, _machine(frequency_mhz=600))
        # Faster clock is faster in seconds, but sublinearly (misses cost
        # more cycles).
        assert fast.seconds < slow.seconds
        assert fast.seconds > slow.seconds * 200 / 600 * 0.8

    def test_bigger_icache_never_hurts_misses(self, compiler, o3):
        from repro.programs import mibench_program

        binary = compiler.compile(mibench_program("rijndael_e"), o3)
        small = simulate_analytic(binary, _machine(il1_size=4096))
        large = simulate_analytic(binary, _machine(il1_size=131072))
        assert small.detail["ic_misses"] >= large.detail["ic_misses"]

    def test_small_icache_thrashes_big_program(self, compiler, o3):
        from repro.programs import mibench_program

        binary = compiler.compile(mibench_program("rijndael_e"), o3)
        small = simulate_analytic(binary, xscale_small_icache())
        big = simulate_analytic(binary, xscale())
        assert small.cycles > 1.5 * big.cycles

    def test_energy_positive_and_scales_with_cache_size(self, binary):
        small = simulate_analytic(binary, _machine(dl1_size=4096))
        large = simulate_analytic(binary, _machine(dl1_size=131072))
        assert small.energy_nj > 0
        assert large.energy_nj > small.energy_nj

    def test_btb_pressure_costs_cycles(self, compiler, o3):
        from repro.programs import mibench_program

        binary = compiler.compile(mibench_program("gs"), o3)
        small_btb = simulate_analytic(binary, _machine(btb_entries=128, btb_assoc=1))
        large_btb = simulate_analytic(binary, _machine(btb_entries=2048, btb_assoc=8))
        assert small_btb.detail["btb_miss_rate"] >= large_btb.detail["btb_miss_rate"]
