"""Tests for the iterative-compilation baselines."""

import pytest

from repro.compiler.flags import o3_setting
from repro.machine.xscale import xscale
from repro.programs import mibench_program
from repro.search import (
    Evaluator,
    SearchResult,
    combined_elimination,
    genetic_search,
    hill_climb,
    random_search,
)


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator(program=mibench_program("tiffdither"), machine=xscale())


class TestEvaluator:
    def test_memoises(self, evaluator):
        before = evaluator.evaluations
        runtime_one = evaluator.evaluate(o3_setting())
        after_first = evaluator.evaluations
        runtime_two = evaluator.evaluate(o3_setting())
        assert runtime_one == runtime_two
        assert evaluator.evaluations == after_first
        assert after_first >= before

    def test_canonicalisation_shares_entries(self, evaluator):
        one = o3_setting().with_values(fgcse=False, fgcse_sm=True)
        two = o3_setting().with_values(fgcse=False, fgcse_sm=False)
        evaluator.evaluate(one)
        count = evaluator.evaluations
        evaluator.evaluate(two)
        assert evaluator.evaluations == count

    def test_speedup_relative_to_o3(self, evaluator):
        assert evaluator.speedup(o3_setting()) == pytest.approx(1.0)


class TestRandomSearch:
    def test_budget_respected(self, evaluator):
        result = random_search(evaluator, budget=25, seed=3)
        assert result.evaluations == 25
        assert len(result.trajectory) == 25

    def test_trajectory_monotone(self, evaluator):
        result = random_search(evaluator, budget=25, seed=3)
        assert all(
            later <= earlier
            for earlier, later in zip(result.trajectory, result.trajectory[1:])
        )

    def test_best_matches_trajectory_floor(self, evaluator):
        result = random_search(evaluator, budget=25, seed=3)
        assert result.best_runtime == pytest.approx(result.trajectory[-1])

    def test_deterministic(self):
        one = random_search(
            Evaluator(mibench_program("sha"), xscale()), budget=15, seed=5
        )
        two = random_search(
            Evaluator(mibench_program("sha"), xscale()), budget=15, seed=5
        )
        assert one.best_setting == two.best_setting

    def test_larger_budget_no_worse(self):
        small = random_search(
            Evaluator(mibench_program("sha"), xscale()), budget=10, seed=5
        )
        large = random_search(
            Evaluator(mibench_program("sha"), xscale()), budget=40, seed=5
        )
        assert large.best_runtime <= small.best_runtime

    def test_evaluations_to_reach(self, evaluator):
        result = random_search(evaluator, budget=25, seed=3)
        index = result.evaluations_to_reach(result.best_runtime)
        assert index is not None
        assert 1 <= index <= 25
        assert result.evaluations_to_reach(0.0) is None

    def test_invalid_budget(self, evaluator):
        with pytest.raises(ValueError):
            random_search(evaluator, budget=0, seed=1)


class TestHillClimb:
    def test_budget_respected(self):
        evaluator = Evaluator(mibench_program("sha"), xscale())
        result = hill_climb(evaluator, budget=30, seed=2)
        assert result.evaluations <= 30
        assert result.best_setting is not None

    def test_trajectory_monotone(self):
        evaluator = Evaluator(mibench_program("sha"), xscale())
        result = hill_climb(evaluator, budget=30, seed=2)
        assert all(
            later <= earlier
            for earlier, later in zip(result.trajectory, result.trajectory[1:])
        )


class TestGenetic:
    def test_budget_respected(self):
        evaluator = Evaluator(mibench_program("sha"), xscale())
        result = genetic_search(evaluator, budget=40, seed=4, population_size=8)
        assert result.evaluations <= 41
        assert result.best_setting is not None

    def test_improves_over_first_generation(self):
        evaluator = Evaluator(mibench_program("susan_e"), xscale())
        result = genetic_search(evaluator, budget=60, seed=4, population_size=10)
        first_generation_best = min(result.trajectory[:10])
        assert result.best_runtime <= first_generation_best


class TestCombinedElimination:
    def test_only_disables_harmful_flags(self):
        evaluator = Evaluator(mibench_program("tiffdither"), xscale())
        result = combined_elimination(evaluator, budget=120)
        # CE starts from everything-on and can only improve on it.
        all_on_runtime = result.trajectory[0]
        assert result.best_runtime <= all_on_runtime

    def test_trajectory_monotone(self):
        evaluator = Evaluator(mibench_program("tiffdither"), xscale())
        result = combined_elimination(evaluator, budget=120)
        assert all(
            later <= earlier
            for earlier, later in zip(result.trajectory, result.trajectory[1:])
        )


class TestBaselineComparison:
    def test_all_baselines_reasonable_on_same_pair(self):
        program = mibench_program("susan_e")
        results = {}
        for name, driver in [
            ("random", lambda ev: random_search(ev, budget=40, seed=1)),
            ("hill", lambda ev: hill_climb(ev, budget=40, seed=1)),
            ("ga", lambda ev: genetic_search(ev, budget=40, seed=1)),
        ]:
            evaluator = Evaluator(program, xscale())
            results[name] = driver(evaluator).best_runtime
        o3_runtime = Evaluator(program, xscale()).evaluate(o3_setting())
        for name, runtime in results.items():
            assert runtime < o3_runtime * 1.2, name


class TestSearchResultEdgeCases:
    def test_empty_trajectory_reaches_nothing(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=1.0,
            evaluations=0,
            trajectory=[],
        )
        assert result.evaluations_to_reach(0.0) is None
        assert result.evaluations_to_reach(float("inf")) is None

    def test_unreachable_target_returns_none(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=2.0,
            evaluations=3,
            trajectory=[4.0, 3.0, 2.0],
        )
        assert result.evaluations_to_reach(1.9) is None

    def test_first_reaching_index_is_one_based(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=2.0,
            evaluations=4,
            trajectory=[4.0, 3.0, 2.0, 2.0],
        )
        assert result.evaluations_to_reach(4.0) == 1
        assert result.evaluations_to_reach(3.5) == 2
        assert result.evaluations_to_reach(2.0) == 3

    def test_target_equal_to_entry_counts_as_reached(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=5.0,
            evaluations=1,
            trajectory=[5.0],
        )
        assert result.evaluations_to_reach(5.0) == 1


class TestEvaluatorBackendInjection:
    def test_custom_simulate_callable_used(self):
        calls = []

        class _StubResult:
            seconds = 42.0

        def stub_simulate(binary, machine):
            calls.append(machine)
            return _StubResult()

        evaluator = Evaluator(
            mibench_program("crc"), xscale(), simulate=stub_simulate
        )
        assert evaluator.evaluate(o3_setting()) == 42.0
        assert len(calls) == 1
        assert evaluator.evaluations == 1

    def test_cache_hit_skips_simulator_and_counter(self):
        calls = []

        class _StubResult:
            seconds = 1.0

        def stub_simulate(binary, machine):
            calls.append(1)
            return _StubResult()

        evaluator = Evaluator(
            mibench_program("crc"), xscale(), simulate=stub_simulate
        )
        evaluator.evaluate(o3_setting())
        evaluator.evaluate(o3_setting())
        assert len(calls) == 1
        assert evaluator.evaluations == 1

    def test_canonical_aliases_share_one_evaluation(self):
        calls = []

        class _StubResult:
            seconds = 1.0

        def stub_simulate(binary, machine):
            calls.append(1)
            return _StubResult()

        evaluator = Evaluator(
            mibench_program("crc"), xscale(), simulate=stub_simulate
        )
        # funroll_loops is off, so its gated parameters are behaviourally
        # inert: all three settings alias to one canonical compilation.
        evaluator.evaluate(o3_setting().with_values(param_max_unroll_times=2))
        evaluator.evaluate(o3_setting().with_values(param_max_unroll_times=16))
        evaluator.evaluate(o3_setting())
        assert len(calls) == 1
        assert evaluator.evaluations == 1


class TestEvaluationsToReachNoneDisambiguation:
    """None means "never reached", pinned against the historical ambiguity
    where a final-evaluation match and an exhausted budget both looked
    like the budget number to callers comparing against len(trajectory)."""

    def test_final_evaluation_match_is_not_none(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=1.0,
            evaluations=3,
            trajectory=[3.0, 2.0, 1.0],
        )
        # Reached exactly on the last evaluation: returns the budget
        # number, never None.
        assert result.evaluations_to_reach(1.0) == 3

    def test_never_reached_is_none_not_budget(self):
        result = SearchResult(
            best_setting=o3_setting(),
            best_runtime=2.0,
            evaluations=3,
            trajectory=[3.0, 2.5, 2.0],
        )
        # A caller charging unreached runs the full budget must branch on
        # None — the two cases are distinguishable only this way.
        reached_at_cap = result.evaluations_to_reach(2.0)
        never = result.evaluations_to_reach(1.0)
        assert reached_at_cap == len(result.trajectory)
        assert never is None
        assert never != reached_at_cap
