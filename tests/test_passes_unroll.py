"""Tests for loop unrolling."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import Opcode, TAG_LOCAL_REDUNDANT
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.unroll import UnrollLoopsPass, unroll_factor
from tests.conftest import simple_loop_program


def _unroll(program, times=8, max_insns=200):
    setting = o3_setting().with_values(
        funroll_loops=True,
        param_max_unroll_times=times,
        param_max_unrolled_insns=max_insns,
    )
    stats = PassStats()
    UnrollLoopsPass().apply(program, setting, stats)
    return stats


class TestUnrollFactor:
    def test_limited_by_times(self):
        assert unroll_factor(body_insns=10, trip_count=1000, max_times=4, max_insns=400) == 4

    def test_limited_by_size(self):
        assert unroll_factor(body_insns=100, trip_count=1000, max_times=16, max_insns=400) == 4

    def test_limited_by_trip_count(self):
        assert unroll_factor(body_insns=4, trip_count=3, max_times=16, max_insns=400) == 3

    def test_hand_unrolled_body_collapses_to_one(self):
        # The rijndael case: a body bigger than max-unrolled-insns.
        assert unroll_factor(body_insns=600, trip_count=64, max_times=8, max_insns=400) == 1

    def test_degenerate_body(self):
        assert unroll_factor(body_insns=0, trip_count=10, max_times=8, max_insns=400) == 1


class TestUnrollTransformation:
    def test_unroll_happens_with_flag(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        stats = _unroll(program, times=4)
        assert stats["unroll.loops"] == 1
        assert stats["unroll.factor_total"] == 4

    def test_disabled_without_flag(self):
        program = simple_loop_program()
        stats = PassStats()
        UnrollLoopsPass().apply(program, o3_setting(), stats)
        assert stats["unroll.loops"] == 0

    def test_static_code_grows_by_factor(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        loop = program.functions["main"].loops[0]
        body_before = sum(
            len(program.functions["main"].blocks[label].instructions)
            for label in loop.blocks
        )
        total_before = program.size_insns
        _unroll(program, times=4)
        grown = program.size_insns - total_before
        # factor 4: three extra copies, minus the three deleted exit tests.
        assert grown == 3 * body_before - 3

    def test_dynamic_work_is_preserved(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        dyn_before = program.dynamic_insns
        _unroll(program, times=4)
        # Branch removal reduces dynamic count slightly; everything else is
        # redistributed, not duplicated.
        assert program.dynamic_insns <= dyn_before
        assert program.dynamic_insns >= 0.9 * dyn_before

    def test_single_backedge_survives(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=4)
        function = program.functions["main"]
        loop = function.loops[0]
        backedges = [
            label
            for label in loop.blocks
            if loop.header in function.blocks[label].successors
        ]
        assert len(backedges) == 1

    def test_intermediate_latches_fall_through(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        stats = _unroll(program, times=4)
        assert stats["unroll.branches_removed"] == 3
        function = program.functions["main"]
        # The original latch now falls straight into copy 1.
        latch = function.blocks["latch"]
        assert latch.terminator is None
        assert latch.successors == ["hdr.u1"]

    def test_trip_count_divided(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=4)
        assert program.functions["main"].loops[0].trip_count == pytest.approx(25.0)

    def test_exec_counts_divided(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0, entries=10.0)
        _unroll(program, times=4)
        header = program.functions["main"].blocks["hdr"]
        assert header.exec_count == pytest.approx(250.0)

    def test_copies_join_loop_blocks(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=4)
        loop = program.functions["main"].loops[0]
        assert len(loop.blocks) == 3 * 4

    def test_control_clones_marked_redundant(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=2)
        function = program.functions["main"]
        clone_header = function.blocks["hdr.u1"]
        assert any(
            insn.has_tag(TAG_LOCAL_REDUNDANT) for insn in clone_header.instructions
        )

    def test_carried_dependence_serialises_copies(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        program.functions["main"].loops[0].carried_dep_latency = 3
        _unroll(program, times=2)
        clone_header = program.functions["main"].blocks["hdr.u1"]
        first = clone_header.instructions[0]
        assert (1, "load") in first.deps

    def test_validates_after_unroll(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=8)
        program.validate()

    def test_layout_keeps_copies_contiguous(self):
        program = simple_loop_program(body_insns=6, trip_count=100.0)
        _unroll(program, times=2)
        layout = program.functions["main"].layout
        start = layout.index("hdr")
        expected = [
            "hdr", "body", "latch",
            "hdr.u1", "body.u1", "latch.u1",
        ]
        assert layout[start : start + 6] == expected

    def test_trip_smaller_than_two_not_unrolled(self):
        program = simple_loop_program(body_insns=6, trip_count=1.0)
        stats = _unroll(program, times=8)
        assert stats["unroll.loops"] == 0
