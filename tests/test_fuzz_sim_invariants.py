"""Property-based invariants of the analytic simulator.

Over randomized binaries (synthetic loop programs and MiBench programs
under random flag settings) and randomized Table 2 machines, the model
must stay physical: cycles and energy strictly positive and finite, and
more cache capacity never slower.

The capacity-monotonicity property needs one care: the Cacti latency
model deliberately makes bigger/more-associative arrays *slower to
access* (a larger cache is not a free lunch), and a crossed
``hit_cycles`` ceiling can legitimately cost more cycles than the saved
misses.  The invariant the simulator owes us is therefore conditional:
with the access-latency bucket unchanged, growing I-cache or D-cache
capacity (size, or effective capacity via associativity) must never
increase the cycle count.  Hypothesis filters machine pairs to the same
timing bucket with ``assume``.
"""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from conftest import simple_loop_program
from repro.compiler.flags import DEFAULT_SPACE
from repro.compiler.pipeline import Compiler
from repro.machine.cacti import dcache_timing, icache_timing
from repro.machine.params import BASE_GRID, EXTENDED_GRID, MicroArch
from repro.programs import mibench_program
from repro.sim.analytic import simulate_analytic

FUZZ_PROGRAMS = ("search", "crc", "qsort", "rawcaudio")

machines = st.builds(
    MicroArch,
    il1_size=st.sampled_from(BASE_GRID["il1_size"]),
    il1_assoc=st.sampled_from(BASE_GRID["il1_assoc"]),
    il1_block=st.sampled_from(BASE_GRID["il1_block"]),
    dl1_size=st.sampled_from(BASE_GRID["dl1_size"]),
    dl1_assoc=st.sampled_from(BASE_GRID["dl1_assoc"]),
    dl1_block=st.sampled_from(BASE_GRID["dl1_block"]),
    btb_entries=st.sampled_from(BASE_GRID["btb_entries"]),
    btb_assoc=st.sampled_from(BASE_GRID["btb_assoc"]),
    frequency_mhz=st.sampled_from(EXTENDED_GRID["frequency_mhz"]),
    issue_width=st.sampled_from(EXTENDED_GRID["issue_width"]),
)


@st.composite
def binaries(draw):
    """A compiled binary: synthetic loop program or MiBench, random flags."""
    setting = DEFAULT_SPACE.sample_many(
        1, seed=draw(st.integers(min_value=0, max_value=50_000))
    )[0]
    if draw(st.booleans()):
        program = mibench_program(draw(st.sampled_from(FUZZ_PROGRAMS)))
    else:
        program = simple_loop_program(
            name="fuzz",
            body_insns=draw(st.integers(min_value=1, max_value=64)),
            trip_count=float(draw(st.integers(min_value=1, max_value=2000))),
            entries=float(draw(st.integers(min_value=1, max_value=64))),
            region_size=draw(st.integers(min_value=64, max_value=2**21)),
        )
    return Compiler(cache=False).compile(program, setting)


def _grow(draw, grid: tuple[int, ...], current: int) -> int:
    """A strictly larger value of the same Table 2 parameter."""
    larger = [value for value in grid if value > current]
    assume(larger)
    return draw(st.sampled_from(larger))


def _same_bucket(one, two) -> bool:
    """Whether two cache configurations cost the same cycles to access.

    Only the discretised ``hit_cycles``/``miss_penalty_cycles`` enter the
    cycle model; the continuous ``access_ns`` differs for any two sizes.
    """
    return (
        one.hit_cycles == two.hit_cycles
        and one.miss_penalty_cycles == two.miss_penalty_cycles
    )


class TestSimWellFormed:
    @given(binary=binaries(), machine=machines)
    @settings(max_examples=60, deadline=None)
    def test_cycles_and_energy_positive_finite(self, binary, machine):
        result = simulate_analytic(binary, machine)
        assert result.cycles > 0.0 and math.isfinite(result.cycles)
        assert result.seconds > 0.0 and math.isfinite(result.seconds)
        assert result.energy_nj > 0.0 and math.isfinite(result.energy_nj)
        assert result.cycles * machine.cycle_ns * 1e-9 == result.seconds
        assert np.isfinite(result.counters.vector()).all()
        for component in vars(result.breakdown).values():
            assert component >= 0.0 and math.isfinite(component)


class TestCapacityMonotonicity:
    @given(data=st.data(), binary=binaries(), machine=machines)
    @settings(max_examples=60, deadline=None)
    def test_icache_capacity_never_hurts(self, data, binary, machine):
        axis = data.draw(st.sampled_from(["il1_size", "il1_assoc"]))
        import dataclasses

        bigger = dataclasses.replace(
            machine,
            **{axis: _grow(data.draw, BASE_GRID[axis], getattr(machine, axis))},
        )
        assume(_same_bucket(icache_timing(bigger), icache_timing(machine)))
        small = simulate_analytic(binary, machine).cycles
        large = simulate_analytic(binary, bigger).cycles
        assert large <= small + 1e-9 * small

    @given(data=st.data(), binary=binaries(), machine=machines)
    @settings(max_examples=60, deadline=None)
    def test_dcache_capacity_never_hurts(self, data, binary, machine):
        axis = data.draw(st.sampled_from(["dl1_size", "dl1_assoc"]))
        import dataclasses

        bigger = dataclasses.replace(
            machine,
            **{axis: _grow(data.draw, BASE_GRID[axis], getattr(machine, axis))},
        )
        assume(_same_bucket(dcache_timing(bigger), dcache_timing(machine)))
        small = simulate_analytic(binary, machine).cycles
        large = simulate_analytic(binary, bigger).cycles
        assert large <= small + 1e-9 * small
