"""Property-based fuzzing of the whole compile pipeline.

For arbitrary points of the 39-dimensional flag space, compilation must
preserve the structural and semantic invariants the simulator depends on.
These are the deepest invariants in the repository: every pass interacts
with every other here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting
from repro.compiler.pipeline import Compiler
from repro.machine.xscale import xscale
from repro.programs import mibench_program
from repro.sim.analytic import simulate_analytic

#: Small, structurally diverse programs keep each example fast.
FUZZ_PROGRAMS = ("search", "tiffdither", "qsort", "susan_e")


def _setting_from_seed(seed: int) -> FlagSetting:
    return DEFAULT_SPACE.sample_many(1, seed=seed)[0]


class TestPipelineFuzz:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        name=st.sampled_from(FUZZ_PROGRAMS),
    )
    @settings(max_examples=40, deadline=None)
    def test_compile_preserves_invariants(self, seed, name):
        setting = _setting_from_seed(seed)
        compiler = Compiler(cache=False)
        binary = compiler.compile(mibench_program(name), setting)

        # Work is conserved within sane bounds: passes may only shrink
        # dynamic work moderately (eliminations) or grow it moderately
        # (spill code); nothing may explode or vanish.
        baseline = mibench_program(name).dynamic_insns
        assert 0.4 * baseline < binary.dyn_insns < 1.8 * baseline

        assert binary.code_bytes > 0
        assert binary.hot_code_bytes <= binary.code_bytes
        assert sum(binary.mix.values()) == pytest.approx(binary.dyn_insns)
        assert binary.dyn_taken <= binary.dyn_branches + 1e-6
        assert 0.0 <= binary.aligned_taken_fraction <= 1.0
        assert binary.branch_sites >= 1
        assert all(count > 0 for count in binary.stall_profile.values())
        assert binary.loops, "hot loops must survive optimisation"
        for loop in binary.loops:
            assert loop.iterations > 0
            assert loop.code_bytes > 0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_compile_deterministic_across_instances(self, seed):
        setting = _setting_from_seed(seed)
        program = mibench_program("search")
        one = Compiler(cache=False).compile(program, setting)
        two = Compiler(cache=False).compile(program, setting)
        assert one.code_bytes == two.code_bytes
        assert one.dyn_insns == pytest.approx(two.dyn_insns)
        assert one.dyn_branches == pytest.approx(two.dyn_branches)
        assert one.stall_profile == two.stall_profile

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_simulation_always_well_formed(self, seed):
        setting = _setting_from_seed(seed)
        binary = Compiler(cache=False).compile(
            mibench_program("tiffdither"), setting
        )
        result = simulate_analytic(binary, xscale())
        assert result.cycles >= binary.dyn_insns * 0.4
        assert result.seconds > 0
        assert result.cycles == pytest.approx(result.breakdown.total())
        counters = result.counters
        assert 0.0 < counters.ipc <= 2.0
        assert 0.0 <= counters.icache_miss_rate <= 1.0
        assert 0.0 <= counters.dcache_miss_rate <= 1.0

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        name=st.sampled_from(FUZZ_PROGRAMS),
    )
    @settings(max_examples=20, deadline=None)
    def test_speedup_over_worst_bounded(self, seed, name):
        """No flag setting may be catastrophically wrong on the reference
        machine (the paper's worst case across the whole space is ~5x)."""
        from repro.compiler.flags import o3_setting

        setting = _setting_from_seed(seed)
        compiler = Compiler(cache=False)
        program = mibench_program(name)
        baseline = simulate_analytic(
            compiler.compile(program, o3_setting()), xscale()
        ).seconds
        candidate = simulate_analytic(
            compiler.compile(program, setting), xscale()
        ).seconds
        assert 0.15 < baseline / candidate < 6.0
