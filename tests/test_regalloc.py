"""Tests for register allocation and the spill model."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Opcode,
    Program,
    TAG_SPILL,
)
from repro.compiler.passes.base import PassStats
from repro.compiler.regalloc import (
    ALLOCATABLE_REGISTERS,
    MAX_SPILLS_PER_BLOCK,
    RegisterAllocationPass,
)
from repro.compiler.passes.schedule import BASELINE_LIVE


def _high_pressure_block(values: int) -> BasicBlock:
    """``values`` simultaneously-live producers consumed at the end."""
    instructions = [
        Instruction(opcode=Opcode.ADD, expr=f"v{i}") for i in range(values)
    ]
    instructions.append(
        Instruction(
            opcode=Opcode.ADD,
            expr="sum",
            deps=tuple((distance, "alu") for distance in range(1, values + 1)),
        )
    )
    return BasicBlock("hot", instructions, exec_count=100.0)


def _program_with(block: BasicBlock) -> Program:
    function = Function(
        name="main", blocks={block.label: block}, layout=[block.label], entry_count=1.0
    )
    return Program(
        name="t",
        functions={"main": function},
        entry="main",
        regions={},
    )


def _spill_count(block: BasicBlock) -> int:
    return sum(1 for insn in block.instructions if insn.has_tag(TAG_SPILL))


class TestSpilling:
    def test_low_pressure_no_spills(self):
        block = _high_pressure_block(3)
        program = _program_with(block)
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        assert _spill_count(block) == 0

    def test_high_pressure_spills(self):
        values = ALLOCATABLE_REGISTERS - BASELINE_LIVE + 3
        block = _high_pressure_block(values)
        program = _program_with(block)
        stats = PassStats()
        RegisterAllocationPass().apply(program, o3_setting(), stats)
        assert stats["regalloc.spilled_values"] > 0
        assert _spill_count(block) == 2 * stats["regalloc.spilled_values"]

    def test_spills_are_store_reload_pairs(self):
        values = ALLOCATABLE_REGISTERS - BASELINE_LIVE + 2
        block = _high_pressure_block(values)
        program = _program_with(block)
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        stores = [
            insn
            for insn in block.instructions
            if insn.has_tag(TAG_SPILL) and insn.opcode is Opcode.STORE
        ]
        reloads = [
            insn
            for insn in block.instructions
            if insn.has_tag(TAG_SPILL) and insn.opcode is Opcode.LOAD
        ]
        assert len(stores) == len(reloads)
        assert {insn.expr for insn in stores} == {insn.expr for insn in reloads}

    def test_spill_cap(self):
        block = _high_pressure_block(40)
        program = _program_with(block)
        stats = PassStats()
        RegisterAllocationPass().apply(program, o3_setting(), stats)
        assert stats["regalloc.spilled_values"] <= MAX_SPILLS_PER_BLOCK

    def test_stack_region_created(self):
        block = _high_pressure_block(3)
        program = _program_with(block)
        assert "stack" not in program.regions
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        assert program.regions["stack"].kind == "stack"

    def test_spills_reference_stack(self):
        values = ALLOCATABLE_REGISTERS - BASELINE_LIVE + 2
        block = _high_pressure_block(values)
        program = _program_with(block)
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        for insn in block.instructions:
            if insn.has_tag(TAG_SPILL):
                assert insn.region == "stack"
        program.validate()


class TestAllocationFlags:
    def _marginal_block(self) -> BasicBlock:
        # Pressure exactly one above the register count: fregmove saves it.
        values = ALLOCATABLE_REGISTERS - BASELINE_LIVE + 1
        return _high_pressure_block(values)

    def test_regmove_relieves_one_unit(self):
        block = self._marginal_block()
        program = _program_with(block)
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        assert _spill_count(block) == 0  # regmove on at O3

        block = self._marginal_block()
        program = _program_with(block)
        RegisterAllocationPass().apply(
            program, o3_setting().with_values(fregmove=False), PassStats()
        )
        assert _spill_count(block) > 0

    def test_caller_saves_policy_around_calls(self):
        def block_with_call():
            block = self._marginal_block()
            block.instructions.insert(
                0, Instruction(opcode=Opcode.CALL, callee="main")
            )
            return block

        # Without caller-saves: blunt save/restore per call.
        block = block_with_call()
        program = _program_with(block)
        RegisterAllocationPass().apply(
            program,
            o3_setting().with_values(fcaller_saves=False, fregmove=False),
            PassStats(),
        )
        without = _spill_count(block)

        block = block_with_call()
        program = _program_with(block)
        RegisterAllocationPass().apply(
            program,
            o3_setting().with_values(fcaller_saves=True, fregmove=False),
            PassStats(),
        )
        with_flag = _spill_count(block)
        assert with_flag <= without

    def test_empty_blocks_skipped(self):
        block = BasicBlock("empty", [], exec_count=10.0)
        program = _program_with(block)
        RegisterAllocationPass().apply(program, o3_setting(), PassStats())
        assert block.instructions == []
