"""Tests for the optimisation space (repro.compiler.flags)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import (
    DEFAULT_SPACE,
    FLAG_NAMES,
    FLAG_SPECS,
    FlagSetting,
    FlagSpace,
    FlagSpec,
    o0_setting,
    o3_setting,
)


class TestFlagSpecs:
    def test_thirty_nine_dimensions(self):
        assert len(FLAG_SPECS) == 39

    def test_thirty_booleans(self):
        booleans = [spec for spec in FLAG_SPECS if spec.is_boolean]
        assert len(booleans) == 30

    def test_nine_parameters(self):
        params = [spec for spec in FLAG_SPECS if not spec.is_boolean]
        assert len(params) == 9
        assert all(spec.name.startswith("param_") for spec in params)

    def test_names_unique(self):
        assert len(set(FLAG_NAMES)) == len(FLAG_NAMES)

    def test_o3_value_valid_everywhere(self):
        for spec in FLAG_SPECS:
            assert spec.o3 in spec.values

    def test_gcse_family_gated(self):
        for name in (
            "fno_gcse_lm",
            "fgcse_sm",
            "fgcse_las",
            "fgcse_after_reload",
            "param_max_gcse_passes",
        ):
            assert DEFAULT_SPACE.spec(name).parent == "fgcse"

    def test_scheduling_subflags_gated(self):
        assert DEFAULT_SPACE.spec("fno_sched_interblock").parent == "fschedule_insns"
        assert DEFAULT_SPACE.spec("fno_sched_spec").parent == "fschedule_insns"

    def test_inline_params_gated(self):
        for name in FLAG_NAMES:
            if "inline" in name and name != "finline_functions":
                assert DEFAULT_SPACE.spec(name).parent == "finline_functions"

    def test_unroll_params_gated(self):
        assert DEFAULT_SPACE.spec("param_max_unroll_times").parent == "funroll_loops"
        assert (
            DEFAULT_SPACE.spec("param_max_unrolled_insns").parent == "funroll_loops"
        )

    def test_invalid_o3_value_rejected(self):
        with pytest.raises(ValueError):
            FlagSpec("bogus", values=(1, 2), o3=3)


class TestO3Setting:
    def test_unroll_off_at_o3(self):
        assert o3_setting()["funroll_loops"] is False

    def test_inline_on_at_o3(self):
        assert o3_setting()["finline_functions"] is True

    def test_gcse_on_with_default_subflags(self):
        setting = o3_setting()
        assert setting["fgcse"] is True
        assert setting["fno_gcse_lm"] is False  # load motion enabled
        assert setting["fgcse_sm"] is False
        assert setting["fgcse_las"] is False

    def test_default_inline_budget_is_90(self):
        assert o3_setting()["param_max_inline_insns_auto"] == 90

    def test_o0_all_booleans_off(self):
        setting = o0_setting()
        for spec in FLAG_SPECS:
            if spec.is_boolean:
                assert setting[spec.name] is False


class TestFlagSetting:
    def test_mapping_interface(self):
        setting = o3_setting()
        assert len(setting) == 39
        assert set(iter(setting)) == set(FLAG_NAMES)
        assert setting["fgcse"] is True

    def test_missing_flag_rejected(self):
        values = {spec.name: spec.o3 for spec in FLAG_SPECS}
        del values["fgcse"]
        with pytest.raises(ValueError, match="missing"):
            FlagSetting(values)

    def test_unknown_flag_rejected(self):
        values = {spec.name: spec.o3 for spec in FLAG_SPECS}
        values["not_a_flag"] = True
        with pytest.raises(ValueError, match="unknown"):
            FlagSetting(values)

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="invalid value"):
            o3_setting().with_values(param_max_unroll_times=3)

    def test_hashable_and_equal(self):
        assert o3_setting() == o3_setting()
        assert hash(o3_setting()) == hash(o3_setting())
        assert o3_setting() != o0_setting()

    def test_with_values_does_not_mutate(self):
        base = o3_setting()
        other = base.with_values(fgcse=False)
        assert base["fgcse"] is True
        assert other["fgcse"] is False

    def test_enabled_respects_gating(self):
        setting = o3_setting().with_values(fgcse=False, fgcse_sm=True)
        assert not setting.enabled("fgcse_sm")
        setting = setting.with_values(fgcse=True)
        assert setting.enabled("fgcse_sm")

    def test_canonical_collapses_gated_dimensions(self):
        one = o3_setting().with_values(fgcse=False, fgcse_sm=True)
        two = o3_setting().with_values(fgcse=False, fgcse_sm=False)
        assert one != two
        assert one.canonical() == two.canonical()

    def test_canonical_keeps_active_dimensions(self):
        setting = o3_setting().with_values(fgcse_sm=True)
        assert setting.canonical()["fgcse_sm"] is True

    def test_indices_roundtrip(self):
        setting = o3_setting()
        assert FlagSetting.from_indices(setting.as_indices()) == setting

    def test_from_indices_wrong_length(self):
        with pytest.raises(ValueError):
            FlagSetting.from_indices([0] * 5)


class TestFlagSpace:
    def test_raw_boolean_size(self):
        assert DEFAULT_SPACE.raw_boolean_size() == 2**30

    def test_raw_size_exceeds_paper_minimum(self):
        # The paper reports 1.69e17 for its exact parameter grids; ours is
        # the same order of magnitude territory (>= 1e14).
        assert DEFAULT_SPACE.raw_size() >= 1e14

    def test_distinct_smaller_than_raw(self):
        assert DEFAULT_SPACE.distinct_size() < DEFAULT_SPACE.raw_size()
        assert (
            DEFAULT_SPACE.distinct_size(booleans_only=True)
            < DEFAULT_SPACE.raw_boolean_size()
        )

    def test_distinct_boolean_hundreds_of_millions(self):
        size = DEFAULT_SPACE.distinct_size(booleans_only=True)
        assert 1e8 < size < 2e9  # paper: 642 million

    def test_sample_many_deterministic(self):
        first = DEFAULT_SPACE.sample_many(20, seed=3)
        second = DEFAULT_SPACE.sample_many(20, seed=3)
        assert first == second

    def test_sample_many_distinct(self):
        settings = DEFAULT_SPACE.sample_many(50, seed=1)
        assert len(set(settings)) == 50

    def test_sample_many_seed_sensitivity(self):
        assert DEFAULT_SPACE.sample_many(10, seed=1) != DEFAULT_SPACE.sample_many(
            10, seed=2
        )

    def test_neighbours_hamming_one(self):
        setting = o3_setting()
        neighbours = list(DEFAULT_SPACE.neighbours(setting))
        expected = sum(spec.cardinality - 1 for spec in FLAG_SPECS)
        assert len(neighbours) == expected
        for neighbour in neighbours:
            differences = sum(
                1 for name in FLAG_NAMES if neighbour[name] != setting[name]
            )
            assert differences == 1

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_sampled_settings_always_valid(self, seed):
        rng = random.Random(seed)
        setting = DEFAULT_SPACE.sample(rng)
        for spec in FLAG_SPECS:
            assert setting[spec.name] in spec.values

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_canonical_idempotent(self, seed):
        rng = random.Random(seed)
        setting = DEFAULT_SPACE.sample(rng)
        assert setting.canonical().canonical() == setting.canonical()

    def test_spaces_are_customisable(self):
        subspace = FlagSpace(FLAG_SPECS[:5])
        assert len(subspace) == 5
