"""Tests for the SVG headline renderer and the report ``formats`` knob."""

from __future__ import annotations

import pytest

from repro.evalrun import render_report
from repro.evalrun.svg import headline_svg


@pytest.fixture(scope="module")
def protocol_pieces(tiny_protocol, tiny_data):
    return tiny_data, tiny_protocol.report.protocol


class TestHeadlineSvg:
    def test_is_a_standalone_svg_document(self, protocol_pieces):
        data, protocol = protocol_pieces
        svg = headline_svg(data, protocol)
        assert svg.startswith("<svg xmlns=")
        assert svg.rstrip().endswith("</svg>")

    def test_mentions_every_program_and_the_average(self, protocol_pieces):
        data, protocol = protocol_pieces
        svg = headline_svg(data, protocol)
        for name in data.training.program_names:
            assert f">{name}</text>" in svg
        assert ">AVERAGE</text>" in svg
        assert "(-O3)" in svg  # the 1.0x baseline is marked

    def test_carries_the_headline_numbers(self, protocol_pieces):
        data, protocol = protocol_pieces
        svg = headline_svg(data, protocol)
        base = protocol.results["base"]
        assert f"model {base.mean_speedup():.3f}x" in svg
        assert f"best {base.mean_best_speedup():.3f}x" in svg

    def test_deterministic(self, protocol_pieces):
        data, protocol = protocol_pieces
        assert headline_svg(data, protocol) == headline_svg(data, protocol)

    def test_requires_base_variant(self, protocol_pieces):
        import dataclasses

        data, protocol = protocol_pieces
        without_base = dataclasses.replace(
            protocol,
            results={k: v for k, v in protocol.results.items() if k != "base"},
        )
        with pytest.raises(ValueError, match="'base' variant"):
            headline_svg(data, without_base)


class TestRenderReportFormats:
    def test_default_formats_skip_svg(self, protocol_pieces):
        data, protocol = protocol_pieces
        report = render_report(data, protocol, only="headline")
        assert report.svg is None
        assert report.svg_fingerprint is None

    def test_svg_format_attaches_figure(self, protocol_pieces):
        data, protocol = protocol_pieces
        report = render_report(
            data, protocol, only="headline", formats=("md", "json", "svg")
        )
        assert report.svg is not None
        assert report.svg_fingerprint is not None
        assert report.svg == headline_svg(data, protocol)

    def test_svg_does_not_shift_report_fingerprint(self, protocol_pieces):
        data, protocol = protocol_pieces
        plain = render_report(data, protocol, only="headline")
        with_svg = render_report(
            data, protocol, only="headline", formats=("md", "json", "svg")
        )
        assert plain.fingerprint == with_svg.fingerprint

    def test_unknown_format_rejected(self, protocol_pieces):
        data, protocol = protocol_pieces
        with pytest.raises(ValueError, match="unknown report formats"):
            render_report(data, protocol, formats=("md", "pdf"))
