"""Tests for the layout passes: jump threading, cross-jumping, sibling
calls, peephole, block reordering and alignment."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Opcode,
    Program,
    TAG_JUMP_CHAIN,
    TAG_MERGEABLE_TAIL,
    TAG_PEEPHOLE,
    TAG_SIBLING,
)
from repro.compiler.passes.align import AlignPass
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.jumps import CrossJumpPass, ThreadJumpsPass
from repro.compiler.passes.misc import PeepholePass, SiblingCallPass
from repro.compiler.passes.reorder import ReorderBlocksPass
from tests.conftest import simple_loop_program


def _program(blocks, layout, functions_extra=None) -> Program:
    function = Function(
        name="main", blocks=blocks, layout=layout, loops=[], entry_count=1.0
    )
    functions = {"main": function}
    if functions_extra:
        functions.update(functions_extra)
    return Program(
        name="t",
        functions=functions,
        entry="main",
        regions={"stack": DataRegion("stack", 4096, "stack")},
    )


class TestThreadJumps:
    def _trampoline_program(self):
        blocks = {
            "a": BasicBlock(
                "a",
                [Instruction(opcode=Opcode.ADD, expr="x")],
                successors=["t"],
                exec_count=100.0,
            ),
            "t": BasicBlock(
                "t",
                [Instruction(opcode=Opcode.JMP, tags=frozenset({TAG_JUMP_CHAIN}))],
                successors=["b"],
                exec_count=100.0,
                taken_prob=1.0,
            ),
            "b": BasicBlock(
                "b", [Instruction(opcode=Opcode.RET)], exec_count=100.0
            ),
        }
        return _program(blocks, ["a", "t", "b"])

    def test_trampoline_removed_and_retargeted(self):
        program = self._trampoline_program()
        stats = PassStats()
        ThreadJumpsPass().apply(program, o3_setting(), stats)
        assert stats["thread_jumps.removed"] == 1
        function = program.functions["main"]
        assert "t" not in function.blocks
        assert function.blocks["a"].successors == ["b"]

    def test_untagged_jumps_kept(self):
        program = self._trampoline_program()
        trampoline = program.functions["main"].blocks["t"]
        trampoline.instructions[0].tags = frozenset()
        ThreadJumpsPass().apply(program, o3_setting(), PassStats())
        assert "t" in program.functions["main"].blocks

    def test_gated_by_flag(self):
        program = self._trampoline_program()
        ThreadJumpsPass().apply(
            program, o3_setting().with_values(fthread_jumps=False), PassStats()
        )
        assert "t" in program.functions["main"].blocks


class TestCrossJump:
    def _tail_program(self):
        def tail(label, count):
            return BasicBlock(
                label,
                [
                    Instruction(
                        opcode=Opcode.ADD,
                        expr="tail:g0",
                        tags=frozenset({TAG_MERGEABLE_TAIL}),
                    )
                    for _ in range(4)
                ],
                successors=["join"],
                exec_count=count,
            )

        blocks = {
            "top": BasicBlock(
                "top",
                [Instruction(opcode=Opcode.CMP), Instruction(opcode=Opcode.BR)],
                successors=["ta", "tb"],
                exec_count=100.0,
                taken_prob=0.7,
            ),
            "ta": tail("ta", 30.0),
            "tb": tail("tb", 70.0),
            "join": BasicBlock(
                "join", [Instruction(opcode=Opcode.RET)], exec_count=100.0
            ),
        }
        return _program(blocks, ["top", "ta", "tb", "join"])

    def test_merges_duplicate_tails(self):
        program = self._tail_program()
        stats = PassStats()
        CrossJumpPass().apply(program, o3_setting(), stats)
        assert stats["crossjump.blocks_merged"] == 1
        function = program.functions["main"]
        # The hotter copy survives.
        assert "tb" in function.blocks
        assert "ta" not in function.blocks

    def test_execution_count_transferred(self):
        program = self._tail_program()
        CrossJumpPass().apply(program, o3_setting(), PassStats())
        assert program.functions["main"].blocks["tb"].exec_count == pytest.approx(
            100.0
        )

    def test_predecessors_retargeted(self):
        program = self._tail_program()
        CrossJumpPass().apply(program, o3_setting(), PassStats())
        top = program.functions["main"].blocks["top"]
        assert top.successors == ["tb", "tb"]

    def test_static_code_shrinks(self):
        program = self._tail_program()
        before = program.size_insns
        CrossJumpPass().apply(program, o3_setting(), PassStats())
        assert program.size_insns == before - 4

    def test_group_size_gate_without_expensive_opts(self):
        program = self._tail_program()
        setting = o3_setting().with_values(fexpensive_optimizations=False)
        CrossJumpPass().apply(program, setting, PassStats())
        # Two copies < min group of 3 without expensive optimizations.
        assert "ta" in program.functions["main"].blocks

    def test_gated_by_flag(self):
        program = self._tail_program()
        CrossJumpPass().apply(
            program, o3_setting().with_values(fcrossjumping=False), PassStats()
        )
        assert "ta" in program.functions["main"].blocks


class TestSiblingCalls:
    def _callee(self):
        block = BasicBlock(
            "leaf.body",
            [Instruction(opcode=Opcode.ADD, expr="x"), Instruction(opcode=Opcode.RET)],
        )
        return Function(
            name="leaf",
            blocks={"leaf.body": block},
            layout=["leaf.body"],
            inline_candidate=True,
        )

    def _caller_program(self):
        blocks = {
            "entry": BasicBlock(
                "entry",
                [
                    Instruction(opcode=Opcode.ADD, expr="a"),
                    Instruction(
                        opcode=Opcode.CALL,
                        callee="leaf",
                        tags=frozenset({TAG_SIBLING}),
                    ),
                    Instruction(opcode=Opcode.RET),
                ],
                exec_count=50.0,
            )
        }
        return _program(blocks, ["entry"], {"leaf": self._callee()})

    def test_tail_call_converted(self):
        program = self._caller_program()
        stats = PassStats()
        SiblingCallPass().apply(program, o3_setting(), stats)
        assert stats["sibcall.converted"] == 1
        entry = program.functions["main"].blocks["entry"]
        assert entry.instructions[-1].opcode is Opcode.JMP
        assert all(insn.opcode is not Opcode.RET for insn in entry.instructions)

    def test_untagged_call_untouched(self):
        program = self._caller_program()
        entry = program.functions["main"].blocks["entry"]
        entry.instructions[1].tags = frozenset()
        SiblingCallPass().apply(program, o3_setting(), PassStats())
        assert entry.instructions[1].opcode is Opcode.CALL

    def test_gated_by_flag(self):
        program = self._caller_program()
        SiblingCallPass().apply(
            program,
            o3_setting().with_values(foptimize_sibling_calls=False),
            PassStats(),
        )
        entry = program.functions["main"].blocks["entry"]
        assert entry.instructions[1].opcode is Opcode.CALL


class TestPeephole:
    def test_removes_tagged_movs(self):
        blocks = {
            "a": BasicBlock(
                "a",
                [
                    Instruction(
                        opcode=Opcode.MOV, expr="m", tags=frozenset({TAG_PEEPHOLE})
                    ),
                    Instruction(opcode=Opcode.ADD, expr="x"),
                ],
            )
        }
        program = _program(blocks, ["a"])
        stats = PassStats()
        PeepholePass().apply(program, o3_setting(), stats)
        assert stats["peephole.removed"] == 1

    def test_gated_by_flag(self):
        blocks = {
            "a": BasicBlock(
                "a",
                [Instruction(opcode=Opcode.MOV, tags=frozenset({TAG_PEEPHOLE}))],
            )
        }
        program = _program(blocks, ["a"])
        PeepholePass().apply(
            program, o3_setting().with_values(fpeephole2=False), PassStats()
        )
        assert len(program.functions["main"].blocks["a"].instructions) == 1


class TestReorderBlocks:
    def _branchy_program(self):
        """top's taken edge (90%) goes to 'hot'; layout puts 'cold' first."""
        blocks = {
            "top": BasicBlock(
                "top",
                [Instruction(opcode=Opcode.CMP), Instruction(opcode=Opcode.BR)],
                successors=["cold", "hot"],
                exec_count=100.0,
                taken_prob=0.9,
            ),
            "cold": BasicBlock(
                "cold",
                [Instruction(opcode=Opcode.ADD, expr="c"), Instruction(opcode=Opcode.JMP)],
                successors=["join"],
                exec_count=10.0,
                taken_prob=1.0,
            ),
            "hot": BasicBlock(
                "hot",
                [Instruction(opcode=Opcode.ADD, expr="h")],
                successors=["join"],
                exec_count=90.0,
            ),
            "join": BasicBlock(
                "join", [Instruction(opcode=Opcode.RET)], exec_count=100.0
            ),
        }
        return _program(blocks, ["top", "cold", "hot", "join"])

    def test_hot_successor_becomes_fallthrough(self):
        program = self._branchy_program()
        stats = PassStats()
        ReorderBlocksPass().apply(program, o3_setting(), stats)
        layout = program.functions["main"].layout
        assert layout.index("hot") == layout.index("top") + 1
        top = program.functions["main"].blocks["top"]
        # Polarity flipped: the hot edge is now the fall-through.
        assert top.taken_prob == pytest.approx(0.1)

    def test_dynamic_taken_weight_reduced(self):
        program = self._branchy_program()

        def taken_weight(prog):
            total = 0.0
            for block in prog.functions["main"].blocks.values():
                if block.terminator is not None:
                    total += block.exec_count * block.taken_prob
            return total

        before = taken_weight(program)
        ReorderBlocksPass().apply(program, o3_setting(), PassStats())
        assert taken_weight(program) < before

    def test_gated_by_flag(self):
        program = self._branchy_program()
        before = list(program.functions["main"].layout)
        ReorderBlocksPass().apply(
            program, o3_setting().with_values(freorder_blocks=False), PassStats()
        )
        assert program.functions["main"].layout == before

    def test_all_blocks_preserved(self):
        program = self._branchy_program()
        before = set(program.functions["main"].blocks)
        ReorderBlocksPass().apply(program, o3_setting(), PassStats())
        assert set(program.functions["main"].blocks) == before

    def test_reorder_keeps_program_valid(self):
        program = self._branchy_program()
        ReorderBlocksPass().apply(program, o3_setting(), PassStats())
        program.validate()

    def test_cold_code_pushed_out_of_loop_span(self):
        program = simple_loop_program()
        function = program.functions["main"]
        # Insert a never-executed block inside the loop span.
        cold = BasicBlock(
            "colds",
            [Instruction(opcode=Opcode.ADD, expr="cold"), Instruction(opcode=Opcode.JMP)],
            successors=["exit"],
            exec_count=0.0,
            taken_prob=1.0,
        )
        function.blocks["colds"] = cold
        function.layout.insert(function.layout.index("body"), "colds")
        ReorderBlocksPass().apply(program, o3_setting(), PassStats())
        layout = function.layout
        loop_positions = [layout.index(label) for label in ("hdr", "body", "latch")]
        assert layout.index("colds") > max(loop_positions)


class TestAlign:
    def test_loop_headers_aligned(self):
        program = simple_loop_program()
        stats = PassStats()
        AlignPass().apply(program, o3_setting(), stats)
        assert program.functions["main"].blocks["hdr"].aligned

    def test_function_entry_aligned(self):
        program = simple_loop_program()
        AlignPass().apply(program, o3_setting(), PassStats())
        assert program.functions["main"].blocks["entry"].aligned

    def test_labels_align_everything(self):
        program = simple_loop_program()
        AlignPass().apply(program, o3_setting(), PassStats())
        assert all(
            block.aligned for block in program.functions["main"].blocks.values()
        )

    def test_padding_costs_code_bytes(self):
        program = simple_loop_program()
        before = program.size_bytes
        stats = PassStats()
        AlignPass().apply(program, o3_setting(), stats)
        assert program.size_bytes == before + stats["align.pad_bytes"]

    def test_all_flags_off_is_noop(self):
        program = simple_loop_program()
        setting = o3_setting().with_values(
            falign_functions=False,
            falign_jumps=False,
            falign_loops=False,
            falign_labels=False,
        )
        before = program.size_bytes
        AlignPass().apply(program, setting, PassStats())
        assert program.size_bytes == before
        assert not any(
            block.aligned for block in program.functions["main"].blocks.values()
        )

    def test_jump_targets_aligned_when_only_jumps_set(self):
        program = simple_loop_program()
        setting = o3_setting().with_values(
            falign_functions=False,
            falign_jumps=True,
            falign_loops=False,
            falign_labels=False,
        )
        AlignPass().apply(program, setting, PassStats())
        blocks = program.functions["main"].blocks
        # 'hdr' is the taken target of the latch branch.
        assert blocks["hdr"].aligned
        assert not blocks["body"].aligned
