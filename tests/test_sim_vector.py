"""The vector kernel's contract: exact equality with the scalar model.

:func:`repro.sim.vector.simulate_many` must reproduce
:func:`repro.sim.analytic.simulate_analytic` float for float — seconds,
cycles, every Table 1 counter, energy, every breakdown component, and
the detail dict — because the golden fingerprints and the byte-identical
protocol guarantees all hash its outputs.  The hypothesis suite here
asserts that pairwise over random generated programs × random flag
settings × random Table 2 machines; the deterministic tests cover the
rewired call sites and the structural edge cases (no loops, no accesses,
padding across dissimilar binaries).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import simple_loop_program
from repro.compiler.flags import DEFAULT_SPACE, o3_setting
from repro.compiler.pipeline import Compiler
from repro.machine.params import BASE_GRID, EXTENDED_GRID, MicroArch, MicroArchSpace
from repro.programs import mibench_program
from repro.sim.analytic import simulate_analytic
from repro.sim.counters import COUNTER_NAMES
from repro.sim.vector import (
    BREAKDOWN_NAMES,
    BinarySignature,
    MachineMatrix,
    simulate_grid,
    simulate_many,
)

FUZZ_PROGRAMS = ("search", "crc", "qsort", "rawcaudio")

machines_strategy = st.builds(
    MicroArch,
    il1_size=st.sampled_from(BASE_GRID["il1_size"]),
    il1_assoc=st.sampled_from(BASE_GRID["il1_assoc"]),
    il1_block=st.sampled_from(BASE_GRID["il1_block"]),
    dl1_size=st.sampled_from(BASE_GRID["dl1_size"]),
    dl1_assoc=st.sampled_from(BASE_GRID["dl1_assoc"]),
    dl1_block=st.sampled_from(BASE_GRID["dl1_block"]),
    btb_entries=st.sampled_from(BASE_GRID["btb_entries"]),
    btb_assoc=st.sampled_from(BASE_GRID["btb_assoc"]),
    frequency_mhz=st.sampled_from(EXTENDED_GRID["frequency_mhz"]),
    issue_width=st.sampled_from(EXTENDED_GRID["issue_width"]),
)


@st.composite
def binaries_strategy(draw):
    """A compiled binary: synthetic loop program or MiBench, random flags."""
    setting = DEFAULT_SPACE.sample_many(
        1, seed=draw(st.integers(min_value=0, max_value=50_000))
    )[0]
    if draw(st.booleans()):
        program = mibench_program(draw(st.sampled_from(FUZZ_PROGRAMS)))
    else:
        program = simple_loop_program(
            name="fuzz",
            body_insns=draw(st.integers(min_value=1, max_value=64)),
            trip_count=float(draw(st.integers(min_value=1, max_value=2000))),
            entries=float(draw(st.integers(min_value=1, max_value=64))),
            region_size=draw(st.integers(min_value=64, max_value=2**21)),
        )
    return Compiler(cache=False).compile(program, setting)


def assert_pair_exact(reference, results, s: int, m: int) -> None:
    """One (binary, machine) pair: every scalar output, bit for bit."""
    vec = results.result(s, m)
    assert vec.seconds == reference.seconds
    assert vec.cycles == reference.cycles
    assert vec.energy_nj == reference.energy_nj
    assert vec.counters.vector() == reference.counters.vector()
    for name in BREAKDOWN_NAMES:
        assert getattr(vec.breakdown, name) == getattr(reference.breakdown, name)
    assert vec.detail == reference.detail
    # The raw tensors agree with the materialised views.
    assert float(results.seconds[s, m]) == reference.seconds
    assert tuple(results.counters[s, m, :]) == reference.counters.vector()
    assert float(results.energy_nj[s, m]) == reference.energy_nj


class TestHypothesisEquivalence:
    @given(
        binary=binaries_strategy(),
        machine=machines_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_single_pair_exact(self, binary, machine):
        results = simulate_grid([binary], [machine])
        assert_pair_exact(simulate_analytic(binary, machine), results, 0, 0)

    @given(
        binaries=st.lists(binaries_strategy(), min_size=2, max_size=4),
        machines=st.lists(
            machines_strategy, min_size=2, max_size=4, unique=True
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_grid_exact(self, binaries, machines):
        """Dissimilar binaries share one padded batch without cross-talk."""
        results = simulate_grid(binaries, machines)
        assert results.shape == (len(binaries), len(machines))
        for s, binary in enumerate(binaries):
            for m, machine in enumerate(machines):
                assert_pair_exact(
                    simulate_analytic(binary, machine), results, s, m
                )

    @given(
        binary=binaries_strategy(),
        machines=st.lists(
            machines_strategy, min_size=1, max_size=6, unique=True
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_batching_is_order_free(self, binary, machines):
        """A pair's value never depends on its batch neighbours."""
        alone = simulate_grid([binary], [machines[0]])
        together = simulate_grid([binary], machines)
        assert float(alone.seconds[0, 0]) == float(together.seconds[0, 0])
        assert np.array_equal(alone.counters[0, 0, :], together.counters[0, 0, :])


class TestStructuralEdges:
    def test_paper_grid_settings_and_machines(self):
        """A realistic shard: several settings × sampled machines, exact."""
        compiler = Compiler()
        program = mibench_program("search")
        settings_list = [o3_setting()] + DEFAULT_SPACE.sample_many(5, seed=9)
        binaries = [compiler.compile(program, s) for s in settings_list]
        machines = MicroArchSpace(extended=True).sample(16, seed=5)
        results = simulate_grid(binaries, machines)
        for s, binary in enumerate(binaries):
            for m, machine in enumerate(machines):
                assert_pair_exact(
                    simulate_analytic(binary, machine), results, s, m
                )

    def test_loopless_binary(self):
        """No loops and no loop accesses: only flat streams and padding."""
        program = simple_loop_program(name="tiny", trip_count=1.0, entries=1.0)
        binary = Compiler(cache=False).compile(program, o3_setting())
        # Pair it with a loopy binary so the padded axes are non-trivial.
        other = Compiler(cache=False).compile(
            mibench_program("madplay"), o3_setting()
        )
        machines = MicroArchSpace().sample(3, seed=1)
        results = simulate_grid([binary, other], machines)
        for s, b in enumerate((binary, other)):
            for m, machine in enumerate(machines):
                assert_pair_exact(simulate_analytic(b, machine), results, s, m)

    def test_machine_matrix_reuse(self):
        """One MachineMatrix serves many simulate_many calls."""
        machines = MicroArchSpace().sample(4, seed=2)
        matrix = MachineMatrix.from_machines(machines)
        binary = Compiler().compile(mibench_program("crc"), o3_setting())
        signature = BinarySignature.from_binary(binary)
        first = simulate_many([signature], matrix)
        second = simulate_many([signature, signature], matrix)
        assert np.array_equal(first.seconds[0], second.seconds[1])

    def test_signature_rejects_unknown_kind(self):
        import dataclasses

        binary = Compiler().compile(mibench_program("crc"), o3_setting())
        bad = dataclasses.replace(
            binary.flat_accesses[0], kind="mystery"
        ) if binary.flat_accesses else None
        if bad is None:
            pytest.skip("no flat accesses on this binary")
        binary.flat_accesses.append(bad)
        with pytest.raises(ValueError, match="unknown region kind"):
            BinarySignature.from_binary(binary)

    def test_counter_tensor_layout(self):
        binary = Compiler().compile(mibench_program("crc"), o3_setting())
        machine = MicroArchSpace().sample(1, seed=3)[0]
        results = simulate_grid([binary], [machine])
        reference = simulate_analytic(binary, machine)
        for k, name in enumerate(COUNTER_NAMES):
            assert float(results.counters[0, 0, k]) == getattr(
                reference.counters, name
            )


class TestRewiredCallSites:
    def test_compute_shard_vector_matches_scalar(self):
        from repro.store.compute import compute_shard

        program = mibench_program("search")
        machines = MicroArchSpace().sample(6, seed=4)
        settings_list = DEFAULT_SPACE.sample_many(4, seed=11)
        vector = compute_shard(program, machines, settings_list, vectorize=True)
        scalar = compute_shard(program, machines, settings_list, vectorize=False)
        for got, want in zip(vector, scalar):
            assert np.array_equal(got, want)

    def test_evaluator_batch_matches_sequential(self):
        from repro.search.evaluator import Evaluator

        machine = MicroArchSpace().sample(1, seed=8)[0]
        settings_list = DEFAULT_SPACE.sample_many(6, seed=21)
        batched = Evaluator(
            program=mibench_program("crc"), machine=machine
        )
        sequential = Evaluator(
            program=mibench_program("crc"), machine=machine
        )
        many = batched.evaluate_many(settings_list)
        each = [sequential.evaluate(s) for s in settings_list]
        assert many == each
        assert batched.evaluations == sequential.evaluations
        # Memoised: a second batch does no new work.
        again = batched.evaluate_many(settings_list)
        assert again == many
        assert batched.evaluations == len(settings_list)

    def test_vectorize_false_pins_the_scalar_reference(self, monkeypatch):
        """With the kernel poisoned, a vectorize=False session must still
        run every hot path — proof the knob really selects the scalar
        reference implementation everywhere, not just in eval.batch."""
        from repro.api import Session

        def boom(*args, **kwargs):
            raise AssertionError("vector kernel used despite vectorize=False")

        for target in (
            "repro.sim.vector.simulate_many",
            "repro.store.compute.simulate_many",
            "repro.evalrun.oracle.simulate_many",
            "repro.api.backends.simulate_grid",
            "repro.search.evaluator.simulate_grid",
        ):
            module_name, attr = target.rsplit(".", 1)
            module = __import__(module_name, fromlist=[attr])
            monkeypatch.setattr(module, attr, boom)

        session = Session("tiny", use_disk_cache=False, vectorize=False)
        machine = session.machines(1, seed=13)[0]
        batch = session.eval.batch(
            [("crc", machine), ("sha", machine)]
        )
        assert len(batch) == 2
        outcome = session.eval.search(
            program="crc", machine=machine, algorithm="random",
            budget=4, seed=2,
        )
        assert outcome.evaluations >= 4
        session.data.build()  # scalar compute_shard on every shard
        from repro.evalrun.oracle import RuntimeOracle

        data = session.data.dataset()
        oracle = RuntimeOracle(data.training, data.programs, vectorize=False)
        from repro.compiler.flags import DEFAULT_SPACE

        off_grid = DEFAULT_SPACE.sample_many(1, seed=991)[0]
        runtimes = oracle.runtime_many(
            data.training.program_names[0],
            [off_grid] * len(data.training.machines),
            data.training.machines,
        )
        assert len(runtimes) == len(data.training.machines)

    def test_eval_facet_batch_vector_path(self):
        from repro.api import Session

        session = Session(scale="tiny", use_disk_cache=False)
        machines = session.machines(2, seed=31)
        requests = [
            (name, machine)
            for name in ("crc", "search")
            for machine in machines
        ]
        fast = session.eval.batch(requests)
        slow_session = Session(
            scale="tiny", use_disk_cache=False, vectorize=False
        )
        slow = slow_session.eval.batch(requests)
        for got, want in zip(fast, slow):
            assert got.runtime == want.runtime
            assert got.simulation.counters == want.simulation.counters
            assert got.program == want.program and got.machine == want.machine
