"""Tests for the command-line interface."""

import json

import pytest

from repro import cli


class TestCli:
    def test_static_experiments_no_dataset(self, capsys):
        assert cli.main(["table2", "fig3", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "288,000" in output
        assert "39" in output

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            cli.main(["table2", "--scale", "galactic"])

    def test_data_experiment_at_tiny_scale(
        self, tiny_data, capsys, monkeypatch, tmp_path
    ):
        # The memo is keyed by persistence config, so the disk-cached CLI
        # builds its own tiny dataset (seconds) into the env-var cache dir.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        assert cli.main(["fig4", "--scale", "tiny", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "AVERAGE" in output

    def test_list_subcommand(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in output
        assert "available experiments" in output

    def test_jobs_and_cache_dir_flags_accepted(self, tmp_path):
        assert cli.main(
            [
                "table2",
                "--quiet",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path),
            ]
        ) == 0

    def test_run_rejects_nonpositive_max_shards(self, tmp_path):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                cli.main(
                    ["run", "--scale", "tiny", "--max-shards", bad,
                     "--cache-dir", str(tmp_path)]
                )

    def test_status_before_any_run(self, tmp_path, capsys):
        assert cli.main(
            ["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "no store" in output
        assert "repro-experiments run" in output

    def test_run_max_shards_then_status_then_resume(self, tmp_path, capsys):
        base = ["--scale", "tiny", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli.main(["run", "--max-shards", "2"] + base) == 0
        assert "2/6 complete" in capsys.readouterr().out

        assert cli.main(["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "2/6 complete" in output
        assert "pending" in output

        # A second 'run' without --resume refuses to touch the partial store.
        with pytest.raises(SystemExit):
            cli.main(["run"] + base)
        capsys.readouterr()

        assert cli.main(["run", "--resume"] + base) == 0
        assert "6/6 complete" in capsys.readouterr().out

        # Complete store: 'run' is a cheap no-op, resumed or not.
        assert cli.main(["run"] + base) == 0
        assert "already complete" in capsys.readouterr().out

        assert cli.main(["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]) == 0
        assert "complete" in capsys.readouterr().out

    def test_status_with_corrupt_manifest_is_friendly(self, tmp_path, capsys):
        """A broken store must diagnose, not traceback (exit 0)."""
        from repro.experiments.config import preset
        from repro.experiments.dataset import store_root

        root = store_root(preset("tiny"), tmp_path)
        root.mkdir(parents=True)
        (root / "manifest.json").write_text('{"format": 99}')
        assert cli.main(
            ["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "not usable" in output
        assert "repro-experiments run" in output

        (root / "manifest.json").write_text("not json at all")
        assert cli.main(
            ["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "not usable" in capsys.readouterr().out

    def test_train_then_models_then_rollback(self, tiny_data, tmp_path, capsys):
        base = ["--scale", "tiny", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli.main(["train"] + base) == 0
        output = capsys.readouterr().out
        assert "registered and promoted model v0001" in output

        assert cli.main(["train", "--no-promote"] + base) == 0
        assert "registered model v0002" in capsys.readouterr().out

        assert cli.main(["models", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "v0001" in output and "v0002" in output
        assert output.count("*promoted*") == 1

        assert cli.main(["models", "--promote", "2", "--cache-dir", str(tmp_path)]) == 0
        assert "promoted model v0002" in capsys.readouterr().out
        assert cli.main(["models", "--rollback", "--cache-dir", str(tmp_path)]) == 0
        assert "v0001" in capsys.readouterr().out

    def test_models_on_empty_registry(self, tmp_path, capsys):
        assert cli.main(["models", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_models_promote_unknown_version_fails(self, tmp_path, capsys):
        assert cli.main(
            ["models", "--promote", "7", "--cache-dir", str(tmp_path)]
        ) == 1
        assert "registry error" in capsys.readouterr().err

    def test_registry_flags_rejected_elsewhere(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["table2", "--promote", "1"])
        with pytest.raises(SystemExit):
            cli.main(["table2", "--rollback"])
        with pytest.raises(SystemExit):
            cli.main(["run", "--no-promote", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            cli.main(["table2", "--registry", str(tmp_path)])
        with pytest.raises(SystemExit):
            cli.main(["table2", "--port", "9999"])
        with pytest.raises(SystemExit):
            cli.main(["report", "--host", "0.0.0.0"])

    def test_serve_binds_and_shuts_down(self, tmp_path, capsys, monkeypatch):
        """The serve command binds, prints its address, and exits cleanly
        on interrupt (the loop itself is interrupted immediately)."""
        import repro.service.server as server_module

        def interrupted(self, poll_interval=0.5):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            server_module.ThreadingHTTPServer, "serve_forever", interrupted
        )
        assert cli.main(
            ["serve", "--scale", "tiny", "--cache-dir", str(tmp_path),
             "--port", "0", "--quiet"]
        ) == 0
        captured = capsys.readouterr()
        assert "serving predictions on http://127.0.0.1:" in captured.out
        assert "no promoted model" in captured.err  # empty registry warns

    def test_report_writes_svg_beside_md_and_json(self, tmp_path, capsys):
        out = tmp_path / "artifact"
        assert cli.main(
            ["report", "--scale", "tiny", "--only", "headline",
             "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
             "--quiet"]
        ) == 0
        assert (out / "report-tiny.md").is_file()
        assert (out / "report-tiny.json").is_file()
        svg = (out / "report-tiny.svg").read_text()
        assert svg.startswith("<svg xmlns=")
        assert "report-tiny.svg" in capsys.readouterr().out

    def test_report_without_base_folds_skips_svg(self, tmp_path, capsys):
        out = tmp_path / "artifact"
        assert cli.main(
            ["report", "--scale", "tiny", "--only", "table2",
             "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
             "--quiet"]
        ) == 0
        assert (out / "report-tiny.md").is_file()
        assert not (out / "report-tiny.svg").exists()
        capsys.readouterr()

    def test_all_includes_every_experiment_name(self):
        assert set(cli.EXPERIMENTS) >= {
            "table1",
            "table2",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "headline",
            "iterations",
        }


class TestTournamentCommand:
    def test_writes_leaderboard_and_bench_artifact(self, tmp_path, capsys):
        out = tmp_path / "tournament"
        assert cli.main(
            ["tournament", "--scale", "tiny", "--programs", "sha",
             "--machines", "1", "--budget", "10", "--seeds", "1",
             "--cache-dir", str(tmp_path / "cache"), "--out", str(out),
             "--quiet"]
        ) == 0
        assert (out / "tournament-tiny.md").is_file()
        assert (out / "tournament-tiny.json").is_file()
        bench = json.loads((out / "BENCH_search.json").read_text())
        assert bench["benchmark"] == "search"
        assert bench["budget"] == 10
        assert {s["strategy"] for s in bench["standings"]} >= {
            "random", "model-genetic",
        }
        stdout = capsys.readouterr().out
        assert "# Search tournament" in stdout

    def test_smoke_rejects_grid_overrides(self):
        with pytest.raises(SystemExit):
            cli.main(["tournament", "--smoke", "--budget", "5"])

    def test_flags_rejected_outside_tournament(self):
        with pytest.raises(SystemExit):
            cli.main(["table2", "--budget", "5"])
        with pytest.raises(SystemExit):
            cli.main(["table2", "--smoke"])

    def test_rejects_bad_budget_and_seeds(self, tmp_path):
        base = ["tournament", "--scale", "tiny",
                "--cache-dir", str(tmp_path), "--quiet"]
        with pytest.raises(SystemExit):
            cli.main(base + ["--budget", "0"])
        with pytest.raises(SystemExit):
            cli.main(base + ["--seeds", "0"])

    def test_smoke_grid_matches_bench_script(self):
        """The CLI gate grid and benchmarks/bench_search.py must agree."""
        import importlib.util
        from pathlib import Path

        bench_path = (
            Path(cli.__file__).resolve().parents[2]
            / "benchmarks"
            / "bench_search.py"
        )
        spec = importlib.util.spec_from_file_location("bench_search", bench_path)
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        assert bench.SMOKE_GRID == {
            "programs": list(cli.SMOKE_TOURNAMENT["programs"]),
            "machines": cli.SMOKE_TOURNAMENT["machines"],
            "budget": cli.SMOKE_TOURNAMENT["budget"],
            "seeds": tuple(range(cli.SMOKE_TOURNAMENT["seeds"])),
            "tolerance": cli.SMOKE_TOURNAMENT["tolerance"],
        }
