"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestCli:
    def test_static_experiments_no_dataset(self, capsys):
        assert cli.main(["table2", "fig3", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "288,000" in output
        assert "39" in output

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            cli.main(["table2", "--scale", "galactic"])

    def test_data_experiment_at_tiny_scale(self, tiny_data, capsys, monkeypatch):
        # tiny_data already populated the in-memory cache; the CLI reuses it.
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
        assert cli.main(["fig4", "--scale", "tiny", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "AVERAGE" in output

    def test_list_subcommand(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in output
        assert "available experiments" in output

    def test_jobs_and_cache_dir_flags_accepted(self, tmp_path):
        assert cli.main(
            [
                "table2",
                "--quiet",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path),
            ]
        ) == 0

    def test_all_includes_every_experiment_name(self):
        assert set(cli.EXPERIMENTS) >= {
            "table1",
            "table2",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "headline",
            "iterations",
        }
