"""Tests for the command-line interface."""

import pytest

from repro import cli


class TestCli:
    def test_static_experiments_no_dataset(self, capsys):
        assert cli.main(["table2", "fig3", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "288,000" in output
        assert "39" in output

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            cli.main(["table2", "--scale", "galactic"])

    def test_data_experiment_at_tiny_scale(
        self, tiny_data, capsys, monkeypatch, tmp_path
    ):
        # The memo is keyed by persistence config, so the disk-cached CLI
        # builds its own tiny dataset (seconds) into the env-var cache dir.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        assert cli.main(["fig4", "--scale", "tiny", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "AVERAGE" in output

    def test_list_subcommand(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        for name in cli.EXPERIMENTS:
            assert name in output
        assert "available experiments" in output

    def test_jobs_and_cache_dir_flags_accepted(self, tmp_path):
        assert cli.main(
            [
                "table2",
                "--quiet",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path),
            ]
        ) == 0

    def test_run_rejects_nonpositive_max_shards(self, tmp_path):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                cli.main(
                    ["run", "--scale", "tiny", "--max-shards", bad,
                     "--cache-dir", str(tmp_path)]
                )

    def test_status_before_any_run(self, tmp_path, capsys):
        assert cli.main(
            ["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "no store" in output
        assert "repro-experiments run" in output

    def test_run_max_shards_then_status_then_resume(self, tmp_path, capsys):
        base = ["--scale", "tiny", "--cache-dir", str(tmp_path), "--quiet"]
        assert cli.main(["run", "--max-shards", "2"] + base) == 0
        assert "2/6 complete" in capsys.readouterr().out

        assert cli.main(["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "2/6 complete" in output
        assert "pending" in output

        # A second 'run' without --resume refuses to touch the partial store.
        with pytest.raises(SystemExit):
            cli.main(["run"] + base)
        capsys.readouterr()

        assert cli.main(["run", "--resume"] + base) == 0
        assert "6/6 complete" in capsys.readouterr().out

        # Complete store: 'run' is a cheap no-op, resumed or not.
        assert cli.main(["run"] + base) == 0
        assert "already complete" in capsys.readouterr().out

        assert cli.main(["status", "--scale", "tiny", "--cache-dir", str(tmp_path)]) == 0
        assert "complete" in capsys.readouterr().out

    def test_all_includes_every_experiment_name(self):
        assert set(cli.EXPERIMENTS) >= {
            "table1",
            "table2",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "headline",
            "iterations",
        }
