"""Session API v2: facets, deprecation shims, and warning-clean examples."""

from __future__ import annotations

import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.api.session as session_module
from repro.api import (
    DataFacet,
    EvalFacet,
    EvaluationRequest,
    ModelsFacet,
    ProtocolFacet,
    Session,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def session():
    return Session("tiny", use_disk_cache=False)


@pytest.fixture(scope="module")
def fitted(session):
    session.models.fit()
    return session


class TestFacetConstruction:
    def test_facets_are_lazy_and_cached(self):
        fresh = Session("tiny", use_disk_cache=False)
        assert fresh._facets == {}
        data = fresh.data
        assert isinstance(data, DataFacet)
        assert fresh.data is data  # one instance per session
        assert isinstance(fresh.models, ModelsFacet)
        assert isinstance(fresh.eval, EvalFacet)
        assert isinstance(fresh.protocol, ProtocolFacet)
        assert set(fresh._facets) == {"data", "models", "eval", "protocol"}

    def test_facets_share_session_state(self, fitted):
        # The models facet fitted the model; every surface sees it.
        assert fitted.models.model is fitted.model
        assert fitted.models.fingerprint == fitted.model_fingerprint
        assert fitted.model_fingerprint is not None

    def test_eval_facet_matches_flat_surface(self, session, machine):
        via_facet = session.eval.evaluate("sha", machine)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = session.evaluate("sha", machine)
        assert via_facet == via_shim

    def test_eval_batch_round_trip(self, session, machine):
        results = session.eval.batch(
            [EvaluationRequest("sha", machine), ("crc", machine)]
        )
        assert [result.program for result in results] == ["sha", "crc"]

    def test_models_predict_and_rank_agree(self, fitted, machine):
        prediction = fitted.models.predict("sha", machine, evaluate=False)
        ranked = fitted.models.rank("sha", machine, top=3)
        assert ranked.best == prediction.setting
        assert [entry.rank for entry in ranked.settings] == [1, 2, 3]
        probabilities = [entry.probability for entry in ranked.settings]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rank_payload_is_json_ready(self, fitted, machine):
        import json

        ranked = fitted.models.rank("sha", machine, top=2)
        payload = ranked.payload()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["settings"][0]["rank"] == 1
        assert round_tripped["machine"]["il1_size"] == machine.il1_size

    def test_protocol_facet_runs_capped(self):
        capped = Session("tiny", use_disk_cache=False)
        seen = []
        outcome = capped.protocol.run(
            only="headline",
            max_folds=2,
            on_fold=lambda key, done, total: seen.append((key.stem(), done, total)),
        )
        assert not outcome.complete
        assert len(seen) == 2
        assert seen[0][1] == 1 and seen[1][1] == 2
        assert seen[0][2] == seen[1][2]  # stable total


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def fresh_warning_state(self, monkeypatch):
        monkeypatch.setattr(session_module, "_DEPRECATION_WARNED", set())

    def test_flat_method_warns_once_per_process(self, session, machine):
        with pytest.warns(DeprecationWarning, match="session.eval.evaluate"):
            session.evaluate("sha", machine)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session.evaluate("sha", machine)  # second call: silent

    def test_each_shim_warns_independently(self, fitted, machine):
        with pytest.warns(DeprecationWarning, match="models.predict"):
            fitted.predict("sha", machine, evaluate=False)
        with pytest.warns(DeprecationWarning, match="eval.search"):
            fitted.search(program="sha", machine=machine, budget=3)

    def test_shim_results_identical_to_facets(self, fitted, machine, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            flat_path = fitted.save_model(tmp_path / "flat.json")
        facet_path = fitted.models.save(tmp_path / "facet.json")
        assert flat_path.read_text() == facet_path.read_text()

    def test_facet_calls_never_warn(self, fitted, machine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fitted.eval.evaluate("sha", machine)
            fitted.models.predict("sha", machine, evaluate=False)
            fitted.data.status()


#: Flat spellings that must not appear in the migrated examples.
_DEPRECATED_SPELLINGS = tuple(
    f".{name}("
    for name in (
        "evaluate_batch",
        "run_protocol",
        "save_model",
        "load_model",
        "build_dataset",
        "dataset_status",
        "experiment_store",
        "protocol_store",
        "speedup_over_o3",
    )
) + ("session.evaluate(", "session.fit(", "session.predict(", "session.search(",
     "deployment.predict(", "deployment.evaluate_batch(")


class TestExamplesOnFacets:
    def test_examples_exist(self):
        assert len(list(EXAMPLES_DIR.glob("*.py"))) == 4

    @pytest.mark.parametrize(
        "example", sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
    )
    def test_example_uses_no_deprecated_spelling(self, example):
        text = (EXAMPLES_DIR / example).read_text()
        hits = [spelling for spelling in _DEPRECATED_SPELLINGS if spelling in text]
        assert not hits, f"{example} still uses deprecated flat calls: {hits}"

    @pytest.mark.parametrize(
        "example", sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
    )
    def test_example_runs_warning_clean(self, example):
        """Every example runs end to end with DeprecationWarning as error."""
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        result = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             str(EXAMPLES_DIR / example)],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 0, (
            f"{example} failed under -W error::DeprecationWarning:\n"
            f"{result.stdout}\n{result.stderr}"
        )


class TestEvalTournament:
    def test_guided_search_through_facet(self, fitted, machine):
        outcome = fitted.eval.search(
            program="sha", machine=machine, algorithm="model-genetic",
            budget=15, seed=0,
        )
        assert outcome.algorithm == "model-genetic"
        assert outcome.evaluations <= 15
        assert outcome.best_runtime <= outcome.o3_runtime * 1.5

    def test_unknown_algorithm_lists_guided_names(self, session, machine):
        with pytest.raises(ValueError, match="model-genetic"):
            session.eval.search(
                program="sha", machine=machine, algorithm="nope", budget=5
            )

    def test_tournament_on_tiny_pair(self, fitted):
        result = fitted.eval.tournament(
            programs=["sha"], machines=1, budget=10, seeds=(0,),
        )
        names = {standing.strategy for standing in result.standings}
        assert {"random", "model-genetic", "beam"} <= names
        assert result.budget == 10
        # Every pair got a best-known floor and every run respects budget.
        assert set(result.best_known) == {("sha", "m0")}
        assert all(run.evaluations <= 10 for run in result.runs)

    def test_tournament_fits_model_when_absent(self):
        fresh = Session("tiny", use_disk_cache=False)
        assert fresh.model is None
        result = fresh.eval.tournament(
            programs=["sha"], machines=1, budget=8, seeds=(0,),
            strategies=["random", "model-genetic"],
        )
        assert fresh.model is not None
        assert {s.strategy for s in result.standings} == {
            "random", "model-genetic",
        }
