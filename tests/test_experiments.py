"""Tests for the experiment harness: scales, datasets, figures, tables."""

import numpy as np
import pytest

from repro.experiments import (
    FIGURE1_PASSES,
    PRESETS,
    Scale,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    headline,
    iterations_to_match,
    preset,
    run_crossval,
    table1,
    table2,
)
from repro.experiments.dataset import _load, _save, load_or_build


class TestScales:
    def test_presets_exist(self):
        assert set(PRESETS) == {"paper", "default", "quick", "tiny"}

    def test_paper_scale_matches_protocol(self):
        paper = preset("paper")
        assert len(paper.programs) == 35
        assert paper.n_machines == 200
        assert paper.n_settings == 1000

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            preset("huge")

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError):
            Scale(name="x", programs=("ghost",), n_machines=4, n_settings=4)

    def test_fingerprint_changes_with_scale(self):
        tiny = preset("tiny")
        other = Scale(
            name="tiny2",
            programs=tiny.programs,
            n_machines=tiny.n_machines + 1,
            n_settings=tiny.n_settings,
        )
        assert tiny.fingerprint() != other.fingerprint()

    def test_extended_variant(self):
        extended = preset("tiny").with_extended()
        assert extended.extended
        assert extended.name == "tiny-ext"
        assert extended.fingerprint() != preset("tiny").fingerprint()


class TestDataset:
    def test_memory_cache_returns_same_object(self, tiny_data):
        again = load_or_build(tiny_data.scale, use_disk_cache=False)
        assert again is tiny_data

    def test_disk_roundtrip(self, tiny_data, tmp_path):
        path = tmp_path / "training-test"
        _save(path, tiny_data.training)
        loaded = _load(path)
        assert loaded is not None
        assert loaded.program_names == tiny_data.training.program_names
        assert loaded.machines == tiny_data.training.machines
        assert loaded.settings == tiny_data.training.settings
        assert np.allclose(loaded.runtimes, tiny_data.training.runtimes)
        assert np.allclose(loaded.counters, tiny_data.training.counters)

    def test_load_missing_returns_none(self, tmp_path):
        assert _load(tmp_path / "nope") is None


class TestStaticExperiments:
    def test_table2_exact_paper_numbers(self):
        result = table2()
        assert result.base_size == 288_000
        assert result.extended_size == 2_880_000
        assert result.xscale["il1_size"] == 32768
        assert "288,000" in result.render()

    def test_figure3_space_accounting(self):
        result = figure3()
        assert result.dimensions == 39
        assert result.booleans == 30
        assert result.raw_boolean_size == 2**30
        assert result.distinct_size < result.raw_size
        assert "1.69e17" in result.render()


class TestDataExperiments:
    def test_table1_eleven_counters(self, tiny_data):
        result = table1(tiny_data)
        assert len(result.counters) == 11
        assert all(name in result.render() for name in result.counters)

    def test_figure4_statistics_ordered(self, tiny_data):
        result = figure4(tiny_data)
        assert np.all(result.minimum <= result.median)
        assert np.all(result.median <= result.maximum)
        assert np.all(result.q25 <= result.q75)
        assert result.overall_mean > 1.0

    def test_figure4_rows_render(self, tiny_data):
        result = figure4(tiny_data)
        assert len(result.rows()) == len(tiny_data.training.program_names)
        assert "AVERAGE" in result.render()

    def test_crossval_cached_per_scale(self, tiny_data):
        assert run_crossval(tiny_data) is run_crossval(tiny_data)

    def test_figure5_surfaces(self, tiny_data):
        result = figure5(tiny_data)
        P = len(tiny_data.training.program_names)
        M = len(tiny_data.training.machines)
        assert result.best.shape == (P, M)
        assert result.predicted.shape == (P, M)
        assert np.all(result.best > 0)
        assert -1.0 <= result.correlation <= 1.0
        assert result.peak_best >= result.best.mean()

    def test_figure6_model_below_best_on_average(self, tiny_data):
        result = figure6(tiny_data)
        assert result.mean_model <= result.mean_best + 0.05

    def test_figure7_sorted_by_best(self, tiny_data):
        result = figure7(tiny_data)
        assert np.all(np.diff(result.best) >= -1e-12)
        regions = result.regions()
        assert set(regions) == {"low-headroom", "middle", "high-headroom"}
        assert regions["high-headroom"][1] >= regions["middle"][1]

    def test_figure8_hinton(self, tiny_data):
        result = figure8(tiny_data)
        assert result.matrix.shape == (
            39,
            len(tiny_data.training.program_names),
        )
        assert result.top_cells(5)
        assert "Figure 8" in result.render()

    def test_figure9_hinton(self, tiny_data):
        result = figure9(tiny_data)
        assert result.matrix.shape == (39, 19)
        assert "Figure 9" in result.render()

    def test_figure1_segments(self, tiny_data):
        result = figure1(tiny_data)
        # rijndael_e is in the tiny scale; three machines per program.
        rijndael_rows = [
            key for key in result.segments if key[0] == "rijndael_e"
        ]
        assert len(rijndael_rows) == 3
        for passes in result.segments.values():
            assert set(passes) == set(FIGURE1_PASSES)
        assert "rijndael_e" in result.render()

    def test_headline_consistency(self, tiny_data):
        result = headline(tiny_data)
        assert result.mean_best_speedup >= result.mean_model_speedup - 0.05
        assert result.best_case_available >= result.best_case_model - 1e-9
        assert result.worst_setting_min <= result.worst_setting_mean
        assert "1.16" in result.render()  # paper reference value shown

    def test_iterations_to_match(self, tiny_data):
        result = iterations_to_match(tiny_data)
        assert len(result.programs) == len(tiny_data.training.program_names)
        assert np.all(result.mean_evaluations >= 1)
        assert np.all(result.mean_evaluations <= result.budget)
        assert 0 <= result.overall_mean <= result.budget
        assert "AVERAGE" in result.render()


class TestAblations:
    def test_knn_sweep_rows(self, tiny_data):
        from repro.experiments import knn_k_sweep

        result = knn_k_sweep(tiny_data, ks=(1, 7))
        assert [row.label.startswith("K = ") for row in result.rows] == [True, True]
        assert any("(paper)" in row.label for row in result.rows)
        assert "Ablation" in result.render()

    def test_beta_sweep_rows(self, tiny_data):
        from repro.experiments import beta_sweep

        result = beta_sweep(tiny_data, betas=(1.0, 16.0))
        assert len(result.rows) == 2
        assert any("(paper)" in row.label for row in result.rows)

    def test_feature_mode_sweep_includes_code_features(self, tiny_data):
        from repro.experiments import feature_mode_sweep

        result = feature_mode_sweep(tiny_data)
        labels = [row.label for row in result.rows]
        assert any(label.startswith("with_code") for label in labels)
        assert any(label.startswith("both") for label in labels)

    def test_joint_vote_predictor_direct(self, tiny_data):
        from repro.experiments import JointVotePredictor
        from repro.sim.counters import PerfCounters

        predictor = JointVotePredictor().fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        setting = predictor.predict(counters, tiny_data.machines[0])
        # The vote returns an observed good setting of some neighbour.
        all_good = set()
        for p in range(len(tiny_data.training.program_names)):
            for m in range(len(tiny_data.training.machines)):
                all_good.update(tiny_data.training.good_settings(p, m))
        assert setting in all_good

    def test_iid_vs_joint_shapes(self, tiny_data):
        from repro.experiments import iid_vs_joint

        result = iid_vs_joint(tiny_data)
        assert {row.label.split()[0] for row in result.rows} == {"IID", "joint"}
