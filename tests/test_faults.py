"""Deterministic fault injection (repro.faults) and the hardened stores.

The load-bearing guarantees, each tested directly:

* failpoint policies fire exactly as specified (once / nth / prob /
  always) and the process-global registry is ~free while disarmed;
* each ioutil helper leaves exactly the wreckage its injected failure
  implies — torn finals, orphaned temps, zero-byte claims, torn
  journal tails — and bounded retries absorb transient ENOSPC while
  never retrying simulated crashes or meaningful OSErrors;
* the stores tolerate the wreckage: zero-byte shards read as pending,
  torn shards raise a diagnosis (not a traceback), corrupt lease and
  progress files render as ``corrupt`` in status, a torn job journal
  replays to its verified prefix, and ``/healthz`` degrades instead of
  dying;
* a hypothesis-driven sweep of (site × policy × seed) schedules over a
  real build + protocol run always converges to byte-identical output
  after disarm + fsck + resume.
"""

from __future__ import annotations

import errno
import json
import os
import threading
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import store_cluster_status
from repro.cluster.lease import ClusterError, LeaseTable, scan_leases
from repro.evalrun.foldstore import FoldStoreError
from repro.experiments.config import Scale
from repro.experiments.dataset import grid_for_scale
from repro.faults import FailpointRegistry, FaultInjected, armed, fire, registry
from repro.faults.core import FaultError, parse_schedule
from repro.ioutil import (
    DEFAULT_RETRY,
    RetryPolicy,
    atomic_write_bytes,
    exclusive_create,
    fsync_append,
    guarded_os_call,
    with_retries,
)
from repro.service.jobs import JobJournal, JobManager
from repro.store import ExperimentRunner, ExperimentStore, StoreError

SMOKE = Scale(name="smoke", programs=("crc", "search"), n_machines=4, n_settings=6)


@pytest.fixture(scope="module")
def smoke_grid():
    return grid_for_scale(SMOKE, chunk_machines=2)


@pytest.fixture(scope="module")
def built_store(smoke_grid, tmp_path_factory):
    """A complete on-disk smoke store (built once, copied per test)."""
    root = tmp_path_factory.mktemp("faults") / f"store-{smoke_grid.fingerprint()}"
    store = ExperimentStore(smoke_grid, root)
    ExperimentRunner(store).run()
    return store


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no schedule armed."""
    registry().disarm()
    registry().reset_stats()
    yield
    registry().disarm()
    registry().reset_stats()


# --------------------------------------------------------------- the registry
class TestFailpointRegistry:
    def test_disarmed_fire_is_none_and_inactive(self):
        assert not registry().active
        assert fire("anything") is None

    def test_once_fires_exactly_once(self):
        reg = FailpointRegistry()
        reg.arm_schedule("a.site=once:error")
        assert reg.fire("a.site") is not None
        assert reg.fire("a.site") is None
        assert reg.fire("a.site") is None
        assert reg.stats()["injected"]["a.site"] == 1

    def test_nth_fires_on_exactly_the_nth_hit(self):
        reg = FailpointRegistry()
        reg.arm_schedule("a.site=nth-3:error")
        fired = [reg.fire("a.site") is not None for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_prob_stream_is_deterministic_per_seed(self):
        def pattern(seed: int) -> list[bool]:
            reg = FailpointRegistry(seed=seed)
            reg.arm_schedule("a.site=prob-0.5:error")
            return [reg.fire("a.site") is not None for _ in range(32)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7)) and not all(pattern(7))

    def test_always_fires_every_hit(self):
        reg = FailpointRegistry()
        reg.arm_schedule("a.site=always:error")
        assert all(reg.fire("a.site") is not None for _ in range(4))

    def test_unarmed_site_never_fires_while_another_is_armed(self):
        reg = FailpointRegistry()
        reg.arm_schedule("a.site=always:error")
        assert reg.fire("b.site") is None

    def test_armed_context_arms_and_fully_disarms(self):
        with armed("a.site=always:error"):
            assert registry().active
            assert fire("a.site") is not None
        assert not registry().active
        assert fire("a.site") is None

    def test_bad_specs_are_rejected(self):
        with pytest.raises(FaultError):
            parse_schedule("no-equals-sign")
        with pytest.raises(FaultError):
            parse_schedule("a=once:explode")
        with pytest.raises(FaultError):
            parse_schedule("a=nth-0:error")
        with pytest.raises(FaultError):
            parse_schedule("a=prob-1.5:error")

    def test_thread_safety_of_once(self):
        reg = FailpointRegistry()
        reg.arm_schedule("a.site=once:error")
        fired = []

        def hammer():
            for _ in range(200):
                if reg.fire("a.site") is not None:
                    fired.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(fired) == 1


# ------------------------------------------------------------ ioutil wreckage
class TestInjectedWreckage:
    def test_torn_atomic_write_leaves_truncated_final(self, tmp_path):
        target = tmp_path / "artifact.json"
        payload = b"x" * 1000
        with armed("w=once:torn"):
            with pytest.raises(FaultInjected):
                atomic_write_bytes(target, payload, site="w")
        assert target.exists()
        assert 0 < target.stat().st_size < len(payload)

    def test_enospc_leaves_orphan_tmp_and_no_final(self, tmp_path):
        target = tmp_path / "artifact.json"
        with armed("w=once:enospc"):
            with pytest.raises(OSError) as excinfo:
                atomic_write_bytes(target, b"y" * 100, site="w")
        assert excinfo.value.errno == errno.ENOSPC
        assert not target.exists()
        assert list(tmp_path.glob(".artifact.json.*.tmp"))

    def test_retries_absorb_a_once_enospc(self, tmp_path):
        target = tmp_path / "artifact.json"
        with armed("w=once:enospc"):
            atomic_write_bytes(target, b"z" * 100, site="w", retries=DEFAULT_RETRY)
        assert target.read_bytes() == b"z" * 100

    def test_torn_append_persists_prefix_without_newline(self, tmp_path):
        target = tmp_path / "events.ndjson"
        fsync_append(target, b'{"first": 1}\n')
        with armed("j=once:torn"):
            with pytest.raises(FaultInjected):
                fsync_append(target, b'{"second": 2}\n', site="j")
        raw = target.read_bytes()
        assert raw.startswith(b'{"first": 1}\n')
        assert len(raw) > len(b'{"first": 1}\n')
        assert not raw.endswith(b"\n")

    def test_torn_exclusive_create_leaves_zero_byte_claim(self, tmp_path):
        target = tmp_path / "unit.lease"
        with armed("c=once:torn"):
            with pytest.raises(FaultInjected):
                exclusive_create(target, site="c")
        assert target.exists() and target.stat().st_size == 0
        # The zero-byte claim now blocks O_EXCL exactly like a real one.
        with pytest.raises(FileExistsError):
            exclusive_create(target, site="c")

    def test_guarded_call_absorbs_once_enospc_but_not_fault_injected(self):
        calls = []
        with armed("g=once:enospc"):
            guarded_os_call(lambda: calls.append(1), site="g", seed_key="k")
        assert calls == [1]
        with armed("g=once:error"):
            with pytest.raises(FaultInjected):
                guarded_os_call(lambda: None, site="g", seed_key="k")


class TestRetryPolicy:
    def test_jitter_is_deterministic_per_seed_key(self):
        policy = RetryPolicy(attempts=4)
        assert list(policy.delays("a")) == list(policy.delays("a"))
        assert list(policy.delays("a")) != list(policy.delays("b"))

    def test_transient_oserror_retries_until_budget(self):
        attempts = []

        def flaky():
            attempts.append(1)
            raise OSError(errno.EIO, "transient")

        with pytest.raises(OSError):
            with_retries(flaky, policy=RetryPolicy(attempts=3), sleep=lambda _: None)
        assert len(attempts) == 3

    def test_meaningful_oserrors_never_retry(self):
        attempts = []

        def race():
            attempts.append(1)
            raise FileExistsError("the O_EXCL answer")

        with pytest.raises(FileExistsError):
            with_retries(race, sleep=lambda _: None)
        assert len(attempts) == 1


# -------------------------------------------- the stores under the wreckage
class TestStoreTolerance:
    def test_zero_byte_shard_reads_as_pending_and_resumes(
        self, smoke_grid, built_store, tmp_path
    ):
        """A shard zeroed by ENOSPC is pending, not fatal (the old code
        crashed in np.load); the resume rebuilds it byte-identically."""
        import shutil

        baseline = built_store.fingerprint()
        root = tmp_path / "store"
        shutil.copytree(built_store.root, root)
        victim = sorted((root / "shards").glob("*.npz"))[0]
        victim.write_bytes(b"")

        store = ExperimentStore(smoke_grid, root)
        pending = store.pending_keys()
        assert len(pending) == 1
        ExperimentRunner(store).run()
        assert store.fingerprint() == baseline

    def test_torn_shard_read_raises_a_diagnosis(
        self, smoke_grid, built_store, tmp_path
    ):
        import shutil

        root = tmp_path / "store"
        shutil.copytree(built_store.root, root)
        victim = sorted((root / "shards").glob("*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:64])  # torn, not empty

        store = ExperimentStore(smoke_grid, root)
        key = [k for k in store.completed_keys() if store._shard_paths(k)[0] == victim]
        with pytest.raises(StoreError, match="quarantine with fsck"):
            store.read_shard(key[0])

    def test_torn_fold_read_raises_a_diagnosis(self, tmp_path):
        from repro.evalrun.foldstore import FoldStore
        from repro.evalrun.variants import protocol_variants

        variants = protocol_variants()[:1]
        store = FoldStore("feedbeef", variants, ["crc"], root=tmp_path / "folds")
        key = next(iter(store.fold_keys()))
        path = store._fold_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"torn')
        with pytest.raises(FoldStoreError, match="quarantine with fsck"):
            store.read_fold(key)

    def test_corrupt_lease_table_fails_fast_not_overwritten(self, tmp_path):
        table_path = tmp_path / "leases" / LeaseTable.META_NAME
        table_path.parent.mkdir(parents=True)
        table_path.write_text("{ torn json")
        with pytest.raises(ClusterError, match="quarantine with fsck"):
            LeaseTable(tmp_path / "leases", fingerprint="abc")
        # The damage is preserved for fsck, not silently replaced.
        assert table_path.read_text() == "{ torn json"


class TestStatusOnCorruptClusterFiles:
    """Satellite: ``status`` renders damage instead of tracebacking."""

    def _cluster_root(self, store) -> Path:
        from repro.cluster.queue import CLUSTER_DIR

        return Path(store.root) / CLUSTER_DIR

    def test_zero_byte_lease_renders_as_corrupt(self, built_store):
        lease_root = self._cluster_root(built_store) / LeaseTable.LEASE_SUBDIR
        lease_root.mkdir(parents=True, exist_ok=True)
        try:
            (lease_root / "p0000-c0000.lease").write_bytes(b"")
            status = store_cluster_status(built_store, ttl=60.0)
            assert "leases/p0000-c0000.lease" in status.corrupt_files
            assert "quarantine with fsck" in status.render()
            # The scan itself marks the lease corrupt but keeps it listed.
            scanned = scan_leases(lease_root, ttl=60.0)
            assert [lease.corrupt for lease in scanned] == [True]
        finally:
            import shutil

            shutil.rmtree(self._cluster_root(built_store))

    def test_torn_progress_file_renders_as_corrupt(self, built_store):
        from repro.cluster.status import PROGRESS_DIR

        progress_root = self._cluster_root(built_store) / PROGRESS_DIR
        progress_root.mkdir(parents=True, exist_ok=True)
        try:
            (progress_root / "w1.json").write_text('{"worker": "w1", "units"')
            status = store_cluster_status(built_store, ttl=60.0)
            assert "progress/w1.json" in status.corrupt_files
            assert "corrupt: progress/w1.json" in status.render()
            assert status.payload()["corrupt_files"] == ["progress/w1.json"]
        finally:
            import shutil

            shutil.rmtree(self._cluster_root(built_store))

    def test_cli_status_survives_corrupt_cluster_dir(self, tmp_path, capsys):
        """End to end: the ``status`` command exits 0 and diagnoses."""
        from repro.api import Session
        from repro.cli import main
        from repro.experiments.dataset import store_root

        scale = "tiny"
        root = store_root(Session(scale, cache_dir=tmp_path).scale, tmp_path)
        lease_root = root / "cluster" / LeaseTable.LEASE_SUBDIR
        lease_root.mkdir(parents=True)
        (lease_root / LeaseTable.META_NAME).write_text("{ torn")
        (lease_root / "p0000-c0000.lease").write_bytes(b"")
        # A store directory must exist for status to look inside it; an
        # empty one renders the "not usable" diagnosis path instead, so
        # build the tiny store first.
        assert main(["run", "--scale", scale, "--cache-dir", str(tmp_path), "--quiet"]) == 0
        assert main(["status", "--scale", scale, "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert "Traceback" not in out


class TestJobJournalTolerance:
    def test_torn_tail_replays_verified_prefix(self, tmp_path):
        journal = JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        chain = journal.load_events("job-0001")[1]
        chain = journal.append({"event": "started", "job": "job-0001"}, chain)
        chain = journal.append({"event": "fold", "fold": "a"}, chain)
        events_path = tmp_path / "job-0001" / JobJournal.EVENTS_NAME
        raw = events_path.read_bytes()
        events_path.write_bytes(raw[:-7])  # tear the last record mid-line
        events, _ = journal.load_events("job-0001")
        assert [event["event"] for event in events] == ["started"]

    def test_corrupt_meta_degrades_manager_and_reserves_the_id(self, tmp_path):
        journal_dir = tmp_path / "job-0001"
        journal_dir.mkdir()
        (journal_dir / JobJournal.META_NAME).write_text("{ torn")
        manager = JobManager(lambda job: {}, root=tmp_path)
        assert any("job-0001" in reason for reason in manager.degraded_reasons)
        # A new submission must not clobber the damaged directory.
        job = manager.submit({})
        assert job.id == "job-0002"
        while not job.done:
            pass
        assert (journal_dir / JobJournal.META_NAME).read_text() == "{ torn"


class TestHealthDegraded:
    def test_corrupt_pointer_and_job_root_degrade_healthz(self, tmp_path, tiny_data):
        from repro.api import Session
        from repro.service import PredictionService

        trainer = Session("tiny", cache_dir=tmp_path)
        trainer.models.fit(tiny_data.training)
        trainer.models.register(promote=True)
        registry_root = tmp_path / "registry"
        (registry_root / "promoted.json").write_text("{ torn")
        jobs_dir = tmp_path / "jobs"
        (jobs_dir / "job-0001").mkdir(parents=True)
        (jobs_dir / "job-0001" / "meta.json").write_text("")

        service = PredictionService(
            Session("tiny", cache_dir=tmp_path, use_disk_cache=False),
            registry=trainer.models.registry(registry_root),
            jobs_dir=jobs_dir,
        )
        health = service.health()
        assert health["status"] == "degraded"
        reasons = " ".join(health["reasons"])
        assert "pointer" in reasons and "job-0001" in reasons

    def test_healthy_service_still_reports_ok(self, tmp_path, tiny_data):
        from repro.api import Session
        from repro.service import PredictionService

        trainer = Session("tiny", cache_dir=tmp_path)
        trainer.models.fit(tiny_data.training)
        trainer.models.register(promote=True)
        service = PredictionService(
            Session("tiny", cache_dir=tmp_path, use_disk_cache=False),
            registry=trainer.models.registry(tmp_path / "registry"),
            persist_jobs=False,
        )
        health = service.health()
        assert health["status"] == "ok"
        assert "reasons" not in health


# ------------------------------------------------- hypothesis schedule sweep
BUILD_SITES = ("store.manifest", "store.shard.npz", "store.shard.sidecar")
FOLD_SITES = ("fold.manifest", "fold.shard")

schedule_entries = st.lists(
    st.tuples(
        st.sampled_from(BUILD_SITES + FOLD_SITES),
        st.sampled_from(["once", "nth-1", "nth-2", "nth-3", "prob-0.3"]),
        st.sampled_from(["error", "enospc", "torn"]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda entry: entry[0],
)


@pytest.fixture(scope="module")
def protocol_inputs(built_store):
    from repro.evalrun.variants import protocol_fingerprint, variant_by_key
    from repro.programs.mibench import mibench_program

    training = built_store.assemble()
    variants = [variant_by_key("base")]
    return (
        training,
        variants,
        protocol_fingerprint(training, variants),
        [mibench_program(name) for name in training.program_names],
    )


class TestScheduleSweep:
    """Satellite: random (site × policy × seed) schedules over a real
    build + protocol run always end byte-identical after resume."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(entries=schedule_entries, seed=st.integers(min_value=0, max_value=2**16))
    def test_build_and_protocol_converge_byte_identical(
        self, entries, seed, smoke_grid, built_store, protocol_inputs, tmp_path_factory
    ):
        from repro.evalrun.foldstore import FoldStore
        from repro.evalrun.pipeline import EvaluationPipeline
        from repro.faults.fsck import fsck_cache

        training, variants, fingerprint, programs = protocol_inputs
        cache = tmp_path_factory.mktemp("sweep")
        store_dir = cache / f"store-smoke-{smoke_grid.fingerprint()}"
        fold_dir = cache / f"protocol-smoke-{fingerprint}"
        schedule = ",".join(
            f"{site}={policy}:{action}" for site, policy, action in entries
        )

        def drive() -> None:
            store = ExperimentStore(smoke_grid, store_dir)
            ExperimentRunner(store).run()
            folds = FoldStore(
                fingerprint, variants, list(training.program_names), root=fold_dir
            )
            EvaluationPipeline(training, programs, folds).run()

        with armed(schedule, seed=seed):
            for _ in range(8):
                try:
                    drive()
                    break
                except Exception:  # noqa: BLE001 - injected kill; resume
                    continue
        fsck_cache(cache, repair=True)
        drive()  # clean completion

        store = ExperimentStore(smoke_grid, store_dir)
        folds = FoldStore(
            fingerprint, variants, list(training.program_names), root=fold_dir
        )
        assert store.fingerprint() == built_store.fingerprint()
        clean = FoldStore(fingerprint, variants, list(training.program_names))
        EvaluationPipeline(training, programs, clean).run()
        assert folds.fingerprint() == clean.fingerprint()


class TestChaosHarness:
    def test_one_build_schedule_end_to_end(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(
            scenarios=("build",), schedules=1, seed=123, drills=False
        )
        assert report.ok
        assert len(report.runs) == 1
        assert report.runs[0].identical

    def test_refuses_to_run_while_armed(self):
        from repro.faults.chaos import run_chaos

        with armed("x=once:error"):
            with pytest.raises(RuntimeError, match="disarm"):
                run_chaos(scenarios=("build",), schedules=1, drills=False)

    def test_disabled_overhead_is_under_budget(self):
        from repro.faults.chaos import measure_disabled_overhead

        overhead = measure_disabled_overhead(iterations=50_000)
        assert overhead["ok"]
        assert overhead["overhead_fraction"] < 0.01
