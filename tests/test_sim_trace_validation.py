"""Cross-validation of the analytic model against the trace-tier reference.

These tests construct binaries with known loop/code/data footprints and
check that the analytic capacity models agree *qualitatively* with true-LRU
reference simulation: same fits-vs-thrashes verdicts, same orderings across
cache sizes.  (Absolute agreement is not expected — the analytic tier is a
first-order model.)
"""

import pytest

from repro.compiler.binary import CompiledBinary, LoopSummary, RegionAccess
from repro.compiler.ir import DataRegion
from repro.machine.params import MicroArch
from repro.sim.analytic import effective_capacity, loop_icache_misses, simulate_analytic
from repro.sim.trace import simulate_trace


def _machine(il1_size=32768, dl1_size=32768, il1_assoc=32, dl1_assoc=32):
    return MicroArch(
        il1_size=il1_size,
        il1_assoc=il1_assoc,
        il1_block=32,
        dl1_size=dl1_size,
        dl1_assoc=dl1_assoc,
        dl1_block=32,
        btb_entries=512,
        btb_assoc=1,
    )


def _binary(loop_code_bytes: int, region_bytes: int, stride: int, kind: str):
    iterations = 200.0
    access = RegionAccess(
        region="data",
        kind=kind,
        region_bytes=region_bytes,
        stride=stride,
        count=iterations * 2,
        is_store=False,
    )
    loop = LoopSummary(
        function="main",
        header="hdr",
        depth=1,
        parent=None,
        iterations=iterations,
        entries=1.0,
        code_bytes=loop_code_bytes,
        own_dyn_insns=iterations * loop_code_bytes / 4,
        accesses=[access],
    )
    return CompiledBinary(
        program_name="synthetic",
        setting=None,
        code_bytes=loop_code_bytes + 256,
        hot_code_bytes=loop_code_bytes,
        dyn_insns=loop.own_dyn_insns,
        mix={
            "alu": loop.own_dyn_insns * 0.7,
            "mac": 0.0,
            "shift": 0.0,
            "load": iterations * 2,
            "store": 0.0,
            "ctrl": iterations,
        },
        dyn_branches=iterations,
        dyn_taken=iterations - 1,
        dyn_calls=0.0,
        branch_sites=1,
        mean_predictability=0.98,
        aligned_taken_fraction=0.0,
        stall_profile={},
        loops=[loop],
        flat_accesses=[],
        regions={"data": DataRegion("data", region_bytes, kind)},
        reg_reads=loop.own_dyn_insns,
        spill_dyn=0.0,
        stats=None,
    )


class TestIcacheAgreement:
    def test_fitting_loop_near_zero_misses_in_both_tiers(self):
        machine = _machine(il1_size=32768)
        binary = _binary(2048, 4096, 4, "stream")
        trace = simulate_trace(binary, machine)
        assert trace.icache_miss_rate < 0.02
        analytic = loop_icache_misses(
            binary.loops[0],
            effective_capacity(machine.il1_size, machine.il1_assoc),
            machine.il1_block,
        )
        # Cold misses only: one per line.
        assert analytic <= 2048 / 32 * 1.1

    def test_thrashing_loop_full_misses_in_both_tiers(self):
        machine = _machine(il1_size=4096)
        binary = _binary(16384, 4096, 4, "stream")
        trace = simulate_trace(binary, machine)
        assert trace.icache_miss_rate > 0.95
        analytic = loop_icache_misses(
            binary.loops[0],
            effective_capacity(machine.il1_size, machine.il1_assoc),
            machine.il1_block,
        )
        lines = 16384 / 32
        iterations = binary.loops[0].iterations
        assert analytic == pytest.approx(iterations * lines, rel=0.05)

    def test_ordering_across_cache_sizes_matches(self):
        binary = _binary(12288, 4096, 4, "stream")
        trace_rates = []
        analytic_misses = []
        for size in (4096, 16384, 65536):
            machine = _machine(il1_size=size)
            trace_rates.append(simulate_trace(binary, machine).icache_miss_rate)
            analytic_misses.append(
                loop_icache_misses(
                    binary.loops[0],
                    effective_capacity(size, machine.il1_assoc),
                    machine.il1_block,
                )
            )
        assert trace_rates == sorted(trace_rates, reverse=True)
        assert analytic_misses == sorted(analytic_misses, reverse=True)


class TestDcacheAgreement:
    def test_resident_table_hits_in_both_tiers(self):
        machine = _machine(dl1_size=32768)
        binary = _binary(1024, 2048, 0, "table")
        trace = simulate_trace(binary, machine)
        assert trace.dcache_miss_rate < 0.35  # compulsory warm-up only
        result = simulate_analytic(binary, machine)
        assert result.counters.dcache_miss_rate < 0.35

    def test_oversized_chase_misses_in_both_tiers(self):
        machine = _machine(dl1_size=4096)
        binary = _binary(1024, 1 << 20, 0, "chase")
        trace = simulate_trace(binary, machine)
        result = simulate_analytic(binary, machine)
        assert trace.dcache_miss_rate > 0.8
        assert result.counters.dcache_miss_rate > 0.8

    def test_dcache_size_ordering_matches(self):
        binary = _binary(1024, 65536, 0, "chase")
        trace_rates = []
        analytic_rates = []
        for size in (4096, 16384, 131072):
            machine = _machine(dl1_size=size)
            trace_rates.append(simulate_trace(binary, machine).dcache_miss_rate)
            analytic_rates.append(
                simulate_analytic(binary, machine).counters.dcache_miss_rate
            )
        assert trace_rates == sorted(trace_rates, reverse=True)
        assert analytic_rates == sorted(analytic_rates, reverse=True)


class TestTraceDeterminism:
    def test_same_seed_same_counts(self):
        binary = _binary(4096, 65536, 4, "stream")
        machine = _machine()
        one = simulate_trace(binary, machine, seed=11)
        two = simulate_trace(binary, machine, seed=11)
        assert one.icache_misses == two.icache_misses
        assert one.dcache_misses == two.dcache_misses

    def test_btb_lookups_counted(self):
        binary = _binary(4096, 65536, 4, "stream")
        trace = simulate_trace(binary, _machine())
        assert trace.btb_lookups > 0
