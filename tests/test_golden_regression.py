"""Golden-regression pins: silent model drift must fail CI.

The smoke-scale (TINY) training set's content fingerprint and the
headline best-vs-O3 speedup are pinned to the committed fixture
``tests/golden/tiny_golden.json``.  Every layer feeds these two numbers —
program specs, every compiler pass, the analytic simulator, the machine
and flag samplers, and the store/assembly path — so an unintended change
anywhere shows up here even when all behavioural tests still pass.

If a change is *intentional*, regenerate the fixture and commit the diff::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.experiments.config import TINY
    from repro.experiments.dataset import load_or_build
    from repro.experiments.tables import headline

    data = load_or_build(TINY, use_disk_cache=False)
    result = headline(data)
    print(json.dumps({
        "scale": "tiny",
        "training_fingerprint": data.training.fingerprint(),
        "headline_mean_best_speedup": result.mean_best_speedup,
        "headline_mean_model_speedup": result.mean_model_speedup,
    }, indent=2))
    EOF
"""

import json
from pathlib import Path

import pytest

from repro.experiments.tables import headline

GOLDEN_PATH = Path(__file__).parent / "golden" / "tiny_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenRegression:
    def test_training_set_fingerprint_pinned(self, tiny_data, golden):
        """The content digest covers programs, machines, settings, and
        every measured runtime bit-for-bit."""
        assert tiny_data.training.fingerprint() == golden["training_fingerprint"]

    def test_headline_best_speedup_pinned(self, tiny_data, golden):
        result = headline(tiny_data)
        assert result.mean_best_speedup == pytest.approx(
            golden["headline_mean_best_speedup"], rel=1e-12
        )
        assert result.mean_model_speedup == pytest.approx(
            golden["headline_mean_model_speedup"], rel=1e-12
        )

    def test_golden_fixture_is_committed_and_sane(self, golden):
        assert golden["scale"] == "tiny"
        assert len(golden["training_fingerprint"]) == 16
        # Best-over-O3 is a maximum over settings that include -O3-like
        # points, so it can never be a slowdown.
        assert golden["headline_mean_best_speedup"] >= 1.0
