"""Tests for the scalar deletion passes: tree-VRP/PRE, CSE, GCSE family."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
    TAG_AFTER_STORE,
    TAG_GLOBAL_REDUNDANT,
    TAG_INVARIANT,
    TAG_INVARIANT_STORE,
    TAG_LOCAL_REDUNDANT,
    TAG_PARTIAL_REDUNDANT,
    TAG_RANGE_CHECK,
    TAG_SPILL,
)
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.cse import CsePass, RerunCsePass
from repro.compiler.passes.gcse import GcseAfterReloadPass, GcsePass
from repro.compiler.passes.tree import TreePrePass, TreeVrpPass


def _program(blocks: dict[str, BasicBlock], layout: list[str], loops=None) -> Program:
    function = Function(
        name="main", blocks=blocks, layout=layout, loops=loops or [], entry_count=1.0
    )
    return Program(
        name="t",
        functions={"main": function},
        entry="main",
        regions={
            "data": DataRegion("data", 4096, "stream"),
            "stack": DataRegion("stack", 4096, "stack"),
        },
    )


def _add(expr, tags=frozenset(), chain=1):
    return Instruction(
        opcode=Opcode.ADD, expr=expr, tags=frozenset(tags), chain=chain
    )


class TestTreePasses:
    def test_vrp_removes_range_checks(self):
        block = BasicBlock(
            "a",
            [
                Instruction(
                    opcode=Opcode.CMP, expr="rc", tags=frozenset({TAG_RANGE_CHECK})
                ),
                _add("x"),
            ],
            exec_count=10.0,
        )
        program = _program({"a": block}, ["a"])
        stats = PassStats()
        TreeVrpPass().apply(program, o3_setting(), stats)
        assert stats["tree_vrp.removed"] == 1
        assert len(block.instructions) == 1

    def test_vrp_disabled_keeps_checks(self):
        block = BasicBlock(
            "a",
            [Instruction(opcode=Opcode.CMP, tags=frozenset({TAG_RANGE_CHECK}))],
        )
        program = _program({"a": block}, ["a"])
        TreeVrpPass().apply(
            program, o3_setting().with_values(ftree_vrp=False), PassStats()
        )
        assert len(block.instructions) == 1

    def test_pre_removes_partial_redundancies(self):
        block = BasicBlock(
            "a", [_add("p", {TAG_PARTIAL_REDUNDANT}), _add("x")]
        )
        program = _program({"a": block}, ["a"])
        stats = PassStats()
        TreePrePass().apply(program, o3_setting(), stats)
        assert stats["tree_pre.removed"] == 1


class TestLocalCse:
    def test_removes_available_recomputation(self):
        block = BasicBlock(
            "a", [_add("v"), _add("v", {TAG_LOCAL_REDUNDANT})]
        )
        program = _program({"a": block}, ["a"])
        stats = PassStats()
        CsePass().apply(program, o3_setting(), stats)
        assert stats["cse.removed"] == 1

    def test_keeps_first_occurrence(self):
        block = BasicBlock(
            "a", [_add("v"), _add("v", {TAG_LOCAL_REDUNDANT})]
        )
        program = _program({"a": block}, ["a"])
        CsePass().apply(program, o3_setting(), PassStats())
        assert block.instructions[0].expr == "v"

    def test_untagged_duplicates_survive(self):
        # Same expression but not provably redundant (e.g. may be clobbered).
        block = BasicBlock("a", [_add("v"), _add("v")])
        program = _program({"a": block}, ["a"])
        CsePass().apply(program, o3_setting(), PassStats())
        assert len(block.instructions) == 2

    def test_cross_block_requires_follow_jumps(self):
        first = BasicBlock("a", [_add("v")], successors=["b"])
        second = BasicBlock("b", [_add("v", {TAG_LOCAL_REDUNDANT})])
        program = _program({"a": first, "b": second}, ["a", "b"])
        setting = o3_setting().with_values(
            fcse_follow_jumps=False, fcse_skip_blocks=False
        )
        CsePass().apply(program, setting, PassStats())
        assert len(second.instructions) == 1  # not removed

        program2 = _program(
            {
                "a": BasicBlock("a", [_add("v")], successors=["b"]),
                "b": BasicBlock("b", [_add("v", {TAG_LOCAL_REDUNDANT})]),
            },
            ["a", "b"],
        )
        setting = o3_setting().with_values(
            fcse_follow_jumps=True, fcse_skip_blocks=False
        )
        stats = PassStats()
        CsePass().apply(program2, setting, stats)
        assert stats["cse.removed"] == 1

    def test_skip_blocks_carries_around_diamond(self):
        blocks = {
            "top": BasicBlock("top", [_add("v"), Instruction(opcode=Opcode.BR)],
                              successors=["left", "right"], taken_prob=0.5),
            "left": BasicBlock("left", [_add("l")], successors=["join"]),
            "right": BasicBlock("right", [_add("r")], successors=["join"]),
            "join": BasicBlock("join", [_add("v", {TAG_LOCAL_REDUNDANT})]),
        }
        program = _program(blocks, ["top", "left", "right", "join"])
        setting = o3_setting().with_values(
            fcse_follow_jumps=False, fcse_skip_blocks=True
        )
        stats = PassStats()
        CsePass().apply(program, setting, stats)
        assert stats["cse.removed"] == 1

    def test_rerun_gated_by_flag(self):
        block = BasicBlock("a", [_add("v"), _add("v", {TAG_LOCAL_REDUNDANT})])
        program = _program({"a": block}, ["a"])
        RerunCsePass().apply(
            program,
            o3_setting().with_values(fre_run_cse_after_loop=False),
            PassStats(),
        )
        assert len(block.instructions) == 2


class TestGcse:
    def _global_program(self, chain=1):
        first = BasicBlock("a", [_add("g")], successors=["b"], exec_count=5.0)
        second = BasicBlock(
            "b",
            [_add("g", {TAG_GLOBAL_REDUNDANT}, chain=chain)],
            exec_count=5.0,
        )
        return _program({"a": first, "b": second}, ["a", "b"]), second

    def test_removes_global_redundancy(self):
        program, block = self._global_program()
        stats = PassStats()
        GcsePass().apply(program, o3_setting(), stats)
        assert stats["gcse.removed"] == 1
        assert len(block.instructions) == 0

    def test_disabled_when_fgcse_off(self):
        program, block = self._global_program()
        GcsePass().apply(
            program, o3_setting().with_values(fgcse=False), PassStats()
        )
        assert len(block.instructions) == 1

    def test_chain_two_needs_multiple_passes(self):
        program, block = self._global_program(chain=2)
        GcsePass().apply(
            program, o3_setting().with_values(param_max_gcse_passes=1), PassStats()
        )
        assert len(block.instructions) == 1

        program, block = self._global_program(chain=2)
        GcsePass().apply(
            program, o3_setting().with_values(param_max_gcse_passes=2), PassStats()
        )
        assert len(block.instructions) == 0

    def test_expensive_optimizations_gates_extra_passes(self):
        program, block = self._global_program(chain=2)
        setting = o3_setting().with_values(
            param_max_gcse_passes=4, fexpensive_optimizations=False
        )
        GcsePass().apply(program, setting, PassStats())
        assert len(block.instructions) == 1

    def _loop_program_with_invariant_load(self, no_lm=False):
        pre = BasicBlock("pre", [_add("p")], successors=["hdr"], exec_count=2.0)
        hdr = BasicBlock(
            "hdr",
            [
                Instruction(
                    opcode=Opcode.LOAD,
                    expr="inv",
                    region="data",
                    stride=0,
                    tags=frozenset({TAG_INVARIANT}),
                ),
                _add("w"),
                Instruction(opcode=Opcode.BR),
            ],
            successors=["exit", "hdr"],
            exec_count=200.0,
            taken_prob=0.99,
            is_loop_header=True,
        )
        exit_block = BasicBlock("exit", [_add("e")], exec_count=2.0)
        loops = [Loop(header="hdr", blocks=["hdr"], trip_count=100.0, entries=2.0)]
        program = _program(
            {"pre": pre, "hdr": hdr, "exit": exit_block},
            ["pre", "hdr", "exit"],
            loops,
        )
        return program, pre, hdr

    def test_load_motion_hoists_to_preheader(self):
        program, pre, hdr = self._loop_program_with_invariant_load()
        stats = PassStats()
        GcsePass().apply(program, o3_setting(), stats)
        assert stats["gcse.loads_hoisted"] == 1
        assert any(insn.opcode is Opcode.LOAD for insn in pre.instructions)
        assert not any(insn.opcode is Opcode.LOAD for insn in hdr.instructions)

    def test_no_gcse_lm_disables_load_motion(self):
        program, pre, hdr = self._loop_program_with_invariant_load()
        setting = o3_setting().with_values(fno_gcse_lm=True)
        GcsePass().apply(program, setting, PassStats())
        assert any(insn.opcode is Opcode.LOAD for insn in hdr.instructions)

    def test_store_motion_sinks_to_exit(self):
        pre = BasicBlock("pre", [_add("p")], successors=["hdr"], exec_count=1.0)
        hdr = BasicBlock(
            "hdr",
            [
                Instruction(
                    opcode=Opcode.STORE,
                    expr="st",
                    region="data",
                    stride=0,
                    tags=frozenset({TAG_INVARIANT_STORE}),
                ),
                Instruction(opcode=Opcode.BR),
            ],
            successors=["exit", "hdr"],
            exec_count=100.0,
            taken_prob=0.99,
            is_loop_header=True,
        )
        exit_block = BasicBlock("exit", [_add("e")], exec_count=1.0)
        loops = [Loop(header="hdr", blocks=["hdr"], trip_count=100.0, entries=1.0)]
        program = _program(
            {"pre": pre, "hdr": hdr, "exit": exit_block}, ["pre", "hdr", "exit"], loops
        )
        stats = PassStats()
        GcsePass().apply(
            program, o3_setting().with_values(fgcse_sm=True), stats
        )
        assert stats["gcse.stores_sunk"] == 1
        assert any(insn.opcode is Opcode.STORE for insn in exit_block.instructions)

    def test_store_motion_off_by_default(self):
        pre = BasicBlock("pre", [_add("p")], successors=["hdr"], exec_count=1.0)
        hdr = BasicBlock(
            "hdr",
            [
                Instruction(
                    opcode=Opcode.STORE,
                    expr="st",
                    region="data",
                    stride=0,
                    tags=frozenset({TAG_INVARIANT_STORE}),
                ),
                Instruction(opcode=Opcode.BR),
            ],
            successors=["exit", "hdr"],
            exec_count=100.0,
            taken_prob=0.99,
            is_loop_header=True,
        )
        exit_block = BasicBlock("exit", [_add("e")], exec_count=1.0)
        loops = [Loop(header="hdr", blocks=["hdr"], trip_count=100.0, entries=1.0)]
        program = _program(
            {"pre": pre, "hdr": hdr, "exit": exit_block}, ["pre", "hdr", "exit"], loops
        )
        GcsePass().apply(program, o3_setting(), PassStats())
        assert any(insn.opcode is Opcode.STORE for insn in hdr.instructions)

    def test_las_removes_forwarded_loads(self):
        block = BasicBlock(
            "a",
            [
                Instruction(opcode=Opcode.STORE, expr="s", region="data", stride=4),
                Instruction(
                    opcode=Opcode.LOAD,
                    expr="s",
                    region="data",
                    stride=0,
                    tags=frozenset({TAG_AFTER_STORE}),
                ),
            ],
            exec_count=10.0,
        )
        program = _program({"a": block}, ["a"])
        stats = PassStats()
        GcsePass().apply(
            program, o3_setting().with_values(fgcse_las=True), stats
        )
        assert stats["gcse.las_removed"] == 1
        assert len(block.instructions) == 1


class TestGcseAfterReload:
    def _spilly_block(self):
        def reload(slot):
            return Instruction(
                opcode=Opcode.LOAD,
                expr=f"spill:{slot}",
                region="stack",
                stride=0,
                tags=frozenset({TAG_SPILL}),
            )

        return BasicBlock(
            "a", [reload(0), _add("x"), reload(1), reload(2), _add("y")]
        )

    def test_removes_alternate_reloads(self):
        block = self._spilly_block()
        program = _program({"a": block}, ["a"])
        stats = PassStats()
        GcseAfterReloadPass().apply(program, o3_setting(), stats)
        assert stats["gcse.reloads_removed"] == 1
        remaining = [
            insn for insn in block.instructions if insn.has_tag(TAG_SPILL)
        ]
        assert len(remaining) == 2

    def test_requires_gcse_enabled(self):
        block = self._spilly_block()
        program = _program({"a": block}, ["a"])
        GcseAfterReloadPass().apply(
            program, o3_setting().with_values(fgcse=False), PassStats()
        )
        assert len(block.instructions) == 5

    def test_gated_by_after_reload_flag(self):
        block = self._spilly_block()
        program = _program({"a": block}, ["a"])
        GcseAfterReloadPass().apply(
            program,
            o3_setting().with_values(fgcse_after_reload=False),
            PassStats(),
        )
        assert len(block.instructions) == 5
