"""Tests for function inlining."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import (
    BasicBlock,
    DataRegion,
    Function,
    Instruction,
    Loop,
    Opcode,
    Program,
    TAG_EPILOGUE,
    TAG_PROLOGUE,
)
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.inline import InlineFunctionsPass


def _callee(name: str, body_insns: int, frame: int = 2) -> Function:
    instructions = [
        Instruction(
            opcode=Opcode.STORE,
            region="stack",
            stride=0,
            tags=frozenset({TAG_PROLOGUE}),
        )
    ]
    instructions += [
        Instruction(opcode=Opcode.ADD, expr=f"{name}.i{i}") for i in range(body_insns)
    ]
    instructions.append(
        Instruction(
            opcode=Opcode.LOAD,
            region="stack",
            stride=0,
            tags=frozenset({TAG_EPILOGUE}),
        )
    )
    instructions.append(Instruction(opcode=Opcode.RET))
    label = f"{name}.body"
    return Function(
        name=name,
        blocks={label: BasicBlock(label, instructions)},
        layout=[label],
        inline_candidate=True,
        entry_count=0.0,
    )


def _caller_with_loop_call(callee_size: int = 10) -> Program:
    callee = _callee("leaf", callee_size)
    iterations = 1000.0
    blocks = {
        "entry": BasicBlock(
            "entry",
            [Instruction(opcode=Opcode.MOV, expr="e")],
            successors=["pre"],
            exec_count=1.0,
        ),
        "pre": BasicBlock(
            "pre",
            [Instruction(opcode=Opcode.MOV, expr="p")],
            successors=["hdr"],
            exec_count=10.0,
        ),
        "hdr": BasicBlock(
            "hdr",
            [
                Instruction(opcode=Opcode.ADD, expr="h0"),
                Instruction(opcode=Opcode.CALL, callee="leaf"),
                Instruction(opcode=Opcode.ADD, expr="h1", deps=((2, "alu"),)),
                Instruction(opcode=Opcode.BR),
            ],
            successors=["exit", "hdr"],
            exec_count=iterations,
            taken_prob=0.99,
            is_loop_header=True,
        ),
        "exit": BasicBlock(
            "exit", [Instruction(opcode=Opcode.RET)], exec_count=10.0
        ),
    }
    function = Function(
        name="main",
        blocks=blocks,
        layout=["entry", "pre", "hdr", "exit"],
        loops=[Loop(header="hdr", blocks=["hdr"], trip_count=100.0, entries=10.0)],
        entry_count=1.0,
    )
    callee.entry_count = iterations
    callee.blocks["leaf.body"].exec_count = iterations
    program = Program(
        name="t",
        functions={"main": function, "leaf": callee},
        entry="main",
        regions={"stack": DataRegion("stack", 4096, "stack")},
    )
    program.validate()
    return program


def _inline(program, **overrides):
    setting = o3_setting().with_values(**overrides) if overrides else o3_setting()
    stats = PassStats()
    InlineFunctionsPass().apply(program, setting, stats)
    return stats


class TestInlineDecision:
    def test_small_callee_inlined_at_o3(self):
        program = _caller_with_loop_call(callee_size=10)
        stats = _inline(program)
        assert stats["inline.sites"] == 1

    def test_oversized_callee_not_inlined_at_default_budget(self):
        # The crc scenario: callee bigger than max-inline-insns-auto=90.
        program = _caller_with_loop_call(callee_size=100)
        stats = _inline(program)
        assert stats["inline.sites"] == 0

    def test_large_budget_inlines_oversized_callee(self):
        program = _caller_with_loop_call(callee_size=100)
        stats = _inline(program, param_max_inline_insns_auto=360)
        assert stats["inline.sites"] == 1

    def test_call_cost_overrides_budget_for_tiny_callees(self):
        program = _caller_with_loop_call(callee_size=2)
        stats = _inline(program, param_max_inline_insns_auto=30)
        assert stats["inline.sites"] == 1

    def test_disabled_flag(self):
        program = _caller_with_loop_call()
        stats = _inline(program, finline_functions=False)
        assert stats["inline.sites"] == 0

    def test_unit_growth_cap_blocks(self):
        program = _caller_with_loop_call(callee_size=60)
        # Make the unit cap binding: tiny absolute cap, tiny growth.
        stats = _inline(
            program,
            param_large_unit_insns=5000,
            param_inline_unit_growth=25,
        )
        # With a unit of ~80 insns the cap is max(5000, ...) -> not binding;
        # verify the accounting fields exist instead of forcing a block.
        assert stats["inline.sites"] in (0, 1)


class TestInlineTransformation:
    def test_call_instruction_removed(self):
        program = _caller_with_loop_call()
        _inline(program)
        main = program.functions["main"]
        calls = [
            insn
            for block in main.blocks.values()
            for insn in block.instructions
            if insn.opcode is Opcode.CALL
        ]
        assert not calls

    def test_prologue_epilogue_elided(self):
        program = _caller_with_loop_call()
        _inline(program)
        main = program.functions["main"]
        for block in main.blocks.values():
            for insn in block.instructions:
                assert not insn.has_tag(TAG_PROLOGUE)
                assert not insn.has_tag(TAG_EPILOGUE)

    def test_inlined_body_joins_enclosing_loop(self):
        program = _caller_with_loop_call()
        _inline(program)
        main = program.functions["main"]
        loop = main.loops[0]
        inlined_labels = [label for label in loop.blocks if ".in." in label]
        assert inlined_labels

    def test_dead_callee_dropped(self):
        program = _caller_with_loop_call()
        stats = _inline(program)
        assert stats["inline.functions_dropped"] == 1
        assert "leaf" not in program.functions

    def test_profile_preserved(self):
        program = _caller_with_loop_call()
        dyn_before = program.dynamic_insns
        _inline(program)
        # CALL + RET + prologue/epilogue events disappear; body work stays.
        assert program.dynamic_insns < dyn_before
        assert program.dynamic_insns > 0.7 * dyn_before

    def test_continuation_preserves_branch(self):
        program = _caller_with_loop_call()
        _inline(program)
        main = program.functions["main"]
        # The continuation carries the loop's terminating branch.
        continuations = [
            block for label, block in main.blocks.items() if ".cont" in label
        ]
        assert len(continuations) == 1
        assert continuations[0].terminator is not None

    def test_crossing_deps_stretched(self):
        program = _caller_with_loop_call()
        _inline(program)
        main = program.functions["main"]
        continuation = next(
            block for label, block in main.blocks.items() if ".cont" in label
        )
        consumer = next(
            insn for insn in continuation.instructions if insn.expr == "h1"
        )
        (distance, kind), = consumer.deps
        assert kind == "alu"
        assert distance > 2  # grew by the inlined body length

    def test_validates_after_inline(self):
        program = _caller_with_loop_call()
        _inline(program)
        program.validate()

    def test_partial_call_count_scaling(self):
        # Two call sites, only one hot; inlining both splits the profile.
        program = _caller_with_loop_call()
        main = program.functions["main"]
        main.blocks["entry"].instructions.append(
            Instruction(opcode=Opcode.CALL, callee="leaf")
        )
        leaf = program.functions["leaf"]
        leaf.entry_count += 1.0
        leaf.blocks["leaf.body"].exec_count += 1.0
        _inline(program)
        assert "leaf" not in program.functions
        program.validate()

    def test_recursive_callee_not_inlined(self):
        program = _caller_with_loop_call()
        leaf = program.functions["leaf"]
        # Make the leaf call itself: no longer inlinable.
        body = leaf.blocks["leaf.body"]
        body.instructions.insert(
            1, Instruction(opcode=Opcode.CALL, callee="leaf")
        )
        stats = _inline(program)
        assert stats["inline.sites"] == 0
