"""Tests for the hardened serving tier: persistent jobs, micro-batching,
promotion channels, load shedding, and the latent service bug fixes
(percentile rounding, torn job snapshots, submit-time validation, 404
metrics, truncated bodies)."""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Session
from repro.machine.xscale import xscale
from repro.service import (
    JobJournal,
    JobManager,
    LoadLimiter,
    PredictionService,
    ServiceError,
    ServiceMetrics,
    canonical_json,
    make_server,
)
from repro.service.jobs import Job, _chain_seed
from repro.sim.counters import COUNTER_NAMES


@pytest.fixture(scope="module")
def deployment(tmp_path_factory, tiny_data):
    """A tiny-trained registry with v1 on 'default' and v2 on 'fast'."""
    cache = tmp_path_factory.mktemp("serving-cache")
    trainer = Session("tiny", cache_dir=cache)
    trainer.models.fit(tiny_data.training)
    trainer.models.register(promote=True)
    trainer.models.register(promote=True, channel="fast")
    return Session("tiny", cache_dir=cache, use_disk_cache=False)


@pytest.fixture(scope="module")
def service(deployment):
    """The default serving stack: micro-batching on."""
    return PredictionService(deployment)


@pytest.fixture(scope="module")
def plain_service(deployment):
    """Ground truth for byte-identity: no batcher at all."""
    return PredictionService(deployment, batching=False)


@pytest.fixture(scope="module")
def server(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _counters_payload(deployment, top=3, **extra):
    profile = deployment.eval.evaluate("sha", xscale())
    return {
        "counters": dict(zip(COUNTER_NAMES, profile.counters.vector())),
        "machine": dataclasses.asdict(xscale()),
        "top": top,
        "program": "sha",
        **extra,
    }


class TestPercentileRounding:
    def test_p50_of_odd_window_is_the_median(self):
        """round() banker's-rounds rank 2.5 down to the 2nd value; the
        nearest-rank definition ceils to the 3rd (the median)."""
        window = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert ServiceMetrics._percentile(window, 0.50) == 3.0

    def test_other_ranks_unchanged(self):
        window = [float(value) for value in range(1, 11)]
        assert ServiceMetrics._percentile(window, 0.50) == 5.0
        assert ServiceMetrics._percentile(window, 0.90) == 9.0
        assert ServiceMetrics._percentile(window, 0.99) == 10.0
        assert ServiceMetrics._percentile([7.0], 0.50) == 7.0

    def test_snapshot_reports_the_median(self):
        metrics = ServiceMetrics()
        for seconds in (0.001, 0.002, 0.003, 0.004, 0.005):
            metrics.observe("/x", seconds)
        snapshot = metrics.snapshot()
        assert snapshot["endpoints"]["/x"]["latency_ms"]["p50"] == pytest.approx(3.0)


class TestJobSnapshotBarrier:
    def test_snapshot_never_pairs_running_with_terminal_event(self):
        """Hammer transition() against snapshot(): the state flip and the
        terminal event land atomically, so no interleaving can show
        'running' next to a 'complete' last_event."""
        for _ in range(200):
            job = Job("job-barrier", {})
            seen = []

            def reader():
                while True:
                    snap = job.snapshot()
                    seen.append(snap)
                    if snap["state"] in ("done", "failed"):
                        return

            thread = threading.Thread(target=reader)
            thread.start()
            job.transition("running", {"event": "started", "job": job.id})
            job.transition("done", {"event": "complete", "job": job.id})
            thread.join(timeout=10)
            assert not thread.is_alive()
            for snap in seen:
                last = snap["last_event"]
                if last is not None and last["event"] == "complete":
                    assert snap["state"] == "done"
                if snap["state"] == "done":
                    assert last is not None and last["event"] == "complete"

    def test_terminal_transition_is_atomic_in_snapshot(self):
        job = Job("job-atomic", {})
        job.transition("running", {"event": "started", "job": job.id})
        job.transition("failed", {"event": "failed", "job": job.id, "error": "x"})
        snap = job.snapshot()
        assert snap["state"] == "failed"
        assert snap["last_event"]["event"] == "failed"


class TestSubmitValidation:
    @pytest.fixture()
    def bare(self, tmp_path):
        return PredictionService(
            Session("tiny", cache_dir=tmp_path, use_disk_cache=False)
        )

    def test_unknown_scale_rejected_at_submit(self, bare):
        with pytest.raises(ServiceError, match="unknown scale") as excinfo:
            bare.submit_job({"scale": "galactic"})
        assert excinfo.value.status == 400

    def test_non_string_scale_rejected(self, bare):
        with pytest.raises(ServiceError, match="'scale' must be"):
            bare.submit_job({"scale": 7})

    def test_unknown_artifact_rejected_at_submit(self, bare):
        with pytest.raises(ServiceError) as excinfo:
            bare.submit_job({"only": "figure99"})
        assert excinfo.value.status == 400

    def test_malformed_only_rejected(self, bare):
        with pytest.raises(ServiceError, match="'only' must be"):
            bare.submit_job({"only": 123})
        with pytest.raises(ServiceError, match="'only' must be"):
            bare.submit_job({"only": ["fig5", 3]})

    def test_unknown_field_rejected(self, bare):
        with pytest.raises(ServiceError, match="unknown job fields"):
            bare.submit_job({"scake": "tiny"})

    def test_bad_max_folds_rejected(self, bare):
        with pytest.raises(ServiceError, match="'max_folds'"):
            bare.submit_job({"max_folds": 0})

    def test_nothing_was_enqueued(self, bare):
        for payload in ({"scale": "galactic"}, {"only": 1}, {"oops": 1}):
            with pytest.raises(ServiceError):
                bare.submit_job(payload)
        assert bare.jobs.counts() == {}


class TestJobJournal:
    EVENTS = [
        {"event": "started", "job": "job-0001"},
        {"event": "fold", "job": "job-0001", "completed": 1, "total": 2},
        {"event": "complete", "job": "job-0001", "folds_computed": 2},
    ]

    def _write(self, root):
        journal = JobJournal.create(root / "job-0001", "job-0001", {"scale": "tiny"})
        chain = _chain_seed("job-0001")
        for event in self.EVENTS:
            chain = journal.append(event, chain)
        return journal, chain

    def test_roundtrip_is_byte_identical(self, tmp_path):
        journal, chain = self._write(tmp_path)
        events, final = journal.load_events("job-0001")
        assert events == self.EVENTS
        assert final == chain
        meta = journal.load_meta()
        assert meta["id"] == "job-0001"
        assert meta["params"] == {"scale": "tiny"}

    def test_torn_tail_is_truncated(self, tmp_path):
        """A kill -9 mid-append leaves a newline-less tail; replay keeps
        everything before it."""
        journal, _ = self._write(tmp_path)
        with open(journal.root / JobJournal.EVENTS_NAME, "ab") as handle:
            handle.write(b'{"chain": "dead", "event"')
        events, _ = journal.load_events("job-0001")
        assert events == self.EVENTS

    def test_tampered_line_distrusts_the_rest(self, tmp_path):
        journal, _ = self._write(tmp_path)
        path = journal.root / JobJournal.EVENTS_NAME
        lines = path.read_bytes().splitlines(keepends=True)
        record = json.loads(lines[1])
        record["event"]["completed"] = 999  # chain digest no longer matches
        lines[1] = (json.dumps(record) + "\n").encode()
        path.write_bytes(b"".join(lines))
        events, _ = journal.load_events("job-0001")
        assert events == self.EVENTS[:1]

    def test_torn_meta_is_not_recovered(self, tmp_path):
        journal, _ = self._write(tmp_path)
        (journal.root / JobJournal.META_NAME).write_text('{"format":')
        assert journal.load_meta() is None


def _wait_done(job, timeout=30.0):
    for _ in job.events(timeout=timeout):
        pass
    assert job.done


class TestPersistentJobManager:
    @staticmethod
    def _runner(job):
        job.emit({"event": "fold", "job": job.id, "completed": 1, "total": 1})
        return {"folds_computed": 1}

    def test_history_survives_restart_byte_identical(self, tmp_path):
        manager = JobManager(self._runner, root=tmp_path)
        job = manager.submit({"scale": "tiny"})
        _wait_done(job)
        before = [canonical_json(event) for event in job.events(timeout=1.0)]
        assert [json.loads(line)["event"] for line in before] == [
            "started",
            "fold",
            "complete",
        ]

        revived = JobManager(self._runner, root=tmp_path)
        replayed = revived.get(job.id)
        assert replayed is not None and replayed.done
        after = [canonical_json(event) for event in replayed.events(timeout=1.0)]
        assert after == before
        assert replayed.snapshot() == job.snapshot()

    def test_counter_resumes_past_recovered_jobs(self, tmp_path):
        manager = JobManager(self._runner, root=tmp_path)
        first = manager.submit({})
        _wait_done(first)
        revived = JobManager(self._runner, root=tmp_path)
        second = revived.submit({})
        assert first.id == "job-0001"
        assert second.id == "job-0002"

    def test_unfinished_job_resumes_with_prefix_intact(self, tmp_path):
        """A journal that ends mid-run (as after kill -9) re-enqueues on
        recovery: the replayed prefix is byte-identical and the run
        continues with a 'resumed' marker instead of re-simulating."""
        journal = JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        chain = _chain_seed("job-0001")
        prefix = [
            {"event": "started", "job": "job-0001"},
            {"event": "fold", "job": "job-0001", "completed": 1, "total": 2},
        ]
        for event in prefix:
            chain = journal.append(event, chain)
        prefix_bytes = [canonical_json(event) for event in prefix]

        calls = []

        def runner(job):
            calls.append(job.id)
            return {"folds_computed": 0, "folds_skipped": 2}

        manager = JobManager(runner, root=tmp_path)
        job = manager.get("job-0001")
        assert job is not None
        _wait_done(job)
        events = list(job.events(timeout=1.0))
        assert [canonical_json(e) for e in events[:2]] == prefix_bytes
        assert [e["event"] for e in events] == [
            "started",
            "fold",
            "resumed",
            "complete",
        ]
        assert calls == ["job-0001"]

    def test_in_memory_manager_still_works(self):
        manager = JobManager(self._runner)
        job = manager.submit({})
        _wait_done(job)
        assert [e["event"] for e in job.events(timeout=1.0)] == [
            "started",
            "fold",
            "complete",
        ]

    def test_prune_destroys_journals(self, tmp_path):
        manager = JobManager(self._runner, root=tmp_path)
        manager.KEEP_FINISHED = 1
        jobs = [manager.submit({}) for _ in range(3)]
        for job in jobs:
            _wait_done(job)
        manager.submit({"scale": None})  # triggers the prune
        surviving = {path.name for path in tmp_path.iterdir()}
        assert "job-0001" not in surviving


class TestMicroBatching:
    def test_concurrent_predicts_byte_identical_to_unbatched(
        self, service, plain_service, deployment
    ):
        payloads = [
            _counters_payload(deployment, top=top) for top in (1, 2, 3, 4, 5, 6)
        ]
        expected = [canonical_json(plain_service.predict(p)) for p in payloads]
        results = [None] * len(payloads)

        def call(index):
            results[index] = canonical_json(service.predict(payloads[index]))

        threads = [
            threading.Thread(target=call, args=(index,))
            for index in range(len(payloads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert results == expected
        snapshot = service.batcher.snapshot()
        assert snapshot["requests"] >= len(payloads)

    def test_queued_requests_coalesce_into_one_dispatch(self, deployment):
        from repro.service.service import _PendingPredict

        coalesced = PredictionService(deployment)
        batcher = coalesced.batcher
        payload = _counters_payload(deployment)
        waiting = [_PendingPredict(dict(payload)) for _ in range(3)]
        batcher._pending.extend(waiting)
        answer = batcher.submit(dict(payload))
        snapshot = batcher.snapshot()
        assert snapshot["batches"] == 1
        assert snapshot["requests"] == 4
        assert snapshot["max_batch"] == 4
        for member in waiting:
            assert member.done and member.error is None
            assert canonical_json(member.response) == canonical_json(answer)

    def test_batched_errors_stay_per_request(self, deployment):
        from repro.service.service import _PendingPredict

        isolated = PredictionService(deployment)
        batcher = isolated.batcher
        bad = _PendingPredict({"machine": {"bogus": 1}})
        batcher._pending.append(bad)
        good = batcher.submit(_counters_payload(deployment))
        assert good["settings"]
        assert isinstance(bad.error, ServiceError)
        assert "bad machine" in str(bad.error)

    def test_batching_can_be_disabled(self, plain_service, deployment):
        assert plain_service.batcher is None
        answer = plain_service.predict(_counters_payload(deployment))
        assert answer["settings"]


class TestChannels:
    def test_requests_route_to_the_channel_model(self, service, deployment):
        payload = _counters_payload(deployment)
        default = service.predict(dict(payload))
        fast = service.predict({**payload, "channel": "fast"})
        assert default["model"]["version"] == 1
        assert fast["model"]["version"] == 2
        assert fast["settings"]  # same predictor state, real answer

    def test_batch_form_routes_too(self, service, deployment):
        payload = _counters_payload(deployment)
        batched = service.predict(
            {"items": [dict(payload)], "channel": "fast"}
        )
        assert batched["model"]["version"] == 2

    def test_health_lists_channels(self, service):
        health = service.health()
        assert health["channel"] == "default"
        assert health["channels"] == {"default": 1, "fast": 2}

    def test_unknown_channel_is_503(self, service, deployment):
        with pytest.raises(ServiceError) as excinfo:
            service.predict(
                {**_counters_payload(deployment), "channel": "staging"}
            )
        assert excinfo.value.status == 503
        assert "fast" in str(excinfo.value)  # hints at live channels

    def test_invalid_channel_name_is_400(self, service, deployment):
        with pytest.raises(ServiceError) as excinfo:
            service.predict(
                {**_counters_payload(deployment), "channel": "no spaces!"}
            )
        assert excinfo.value.status == 400

    def test_service_can_default_to_a_channel(self, deployment):
        pinned = PredictionService(deployment, channel="fast", batching=False)
        answer = pinned.predict(_counters_payload(deployment))
        assert answer["model"]["version"] == 2


class TestLoadShedding:
    def test_limiter_sheds_past_the_budget(self):
        limiter = LoadLimiter(max_inflight=1, retry_after=2.0)
        with limiter.admit():
            with pytest.raises(ServiceError) as excinfo:
                with limiter.admit():
                    pass
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 2.0
        snapshot = limiter.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["peak_inflight"] == 1
        with limiter.admit():  # the slot was released
            pass

    def test_http_sheds_with_retry_after(self, deployment):
        shedding = PredictionService(deployment, max_inflight=0)
        server = make_server(shedding, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            request = urllib.request.Request(
                f"http://{host}:{port}/predict",
                data=json.dumps(
                    _counters_payload(deployment)
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"] == "1"
            assert shedding.metrics_snapshot()["load"]["shed"] == 1
        finally:
            server.shutdown()
            server.server_close()


class TestHttpSatellites:
    def test_unknown_routes_count_in_metrics(self, base_url):
        for path, method in (("/nope", "GET"), ("/nor-this", "POST")):
            request = urllib.request.Request(
                base_url + path, data=b"{}" if method == "POST" else None
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 404
        with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
            metrics = json.loads(response.read())
        bucket = metrics["endpoints"]["404"]
        assert bucket["count"] >= 2
        assert bucket["errors"] >= 2

    def test_truncated_body_is_a_distinct_400(self, server, base_url):
        """A client that dies mid-body gets 'truncated body', not a
        misleading bad-JSON complaint about its half-payload."""
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /predict HTTP/1.0\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 512\r\n"
                b"\r\n"
                b'{"program": "sha", '  # 19 of the declared 512 bytes
            )
            sock.shutdown(socket.SHUT_WR)
            response = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        assert b"truncated body" in body
        assert b"bad JSON" not in body

    def test_metrics_surface_load_and_batching(self, base_url):
        with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
            metrics = json.loads(response.read())
        assert metrics["load"]["max_inflight"] > 0
        assert metrics["batching"]["enabled"] is True

class TestJournalCompaction:
    EVENTS = [
        {"event": "started", "job": "job-0001"},
        {"event": "fold", "job": "job-0001", "completed": 1, "total": 1},
        {"event": "complete", "job": "job-0001", "folds_computed": 1},
    ]

    def _write(self, root):
        journal = JobJournal.create(root / "job-0001", "job-0001", {})
        chain = _chain_seed("job-0001")
        for event in self.EVENTS:
            chain = journal.append(event, chain)
        return journal, chain

    def test_compacted_history_is_byte_identical(self, tmp_path):
        journal, chain = self._write(tmp_path)
        journal.compact("job-0001", self.EVENTS, chain)
        assert (journal.root / JobJournal.SNAPSHOT_NAME).exists()
        assert not (journal.root / JobJournal.EVENTS_NAME).exists()
        events, final = journal.load_events("job-0001")
        assert [canonical_json(e) for e in events] == [
            canonical_json(e) for e in self.EVENTS
        ]
        assert final == chain

    def test_stale_ndjson_after_crash_mid_compaction_is_discarded(self, tmp_path):
        """A crash between the snapshot rename and the NDJSON unlink
        leaves both files; the stale NDJSON chains from the seed, breaks
        at line 1 against the snapshot's digest, and is ignored."""
        journal, chain = self._write(tmp_path)
        ndjson = (journal.root / JobJournal.EVENTS_NAME).read_bytes()
        journal.compact("job-0001", self.EVENTS, chain)
        (journal.root / JobJournal.EVENTS_NAME).write_bytes(ndjson)
        events, final = journal.load_events("job-0001")
        assert events == self.EVENTS  # not doubled
        assert final == chain

    def test_tampered_snapshot_is_rejected_wholesale(self, tmp_path):
        journal, chain = self._write(tmp_path)
        journal.compact("job-0001", self.EVENTS, chain)
        path = journal.root / JobJournal.SNAPSHOT_NAME
        snapshot = json.loads(path.read_text())
        snapshot["events"][1]["completed"] = 999
        path.write_text(json.dumps(snapshot))
        assert journal.load_snapshot("job-0001") is None
        assert journal.load_events("job-0001") == ([], _chain_seed("job-0001"))

    def test_manager_compacts_only_finished_jobs(self, tmp_path):
        manager = JobManager(TestPersistentJobManager._runner, root=tmp_path)
        job = manager.submit({})
        _wait_done(job)
        assert manager.compact() == 1
        assert manager.compact("job-0001") == 1  # idempotent
        assert manager.compact("job-9999") == 0  # unknown: skipped, no error

        revived = JobManager(TestPersistentJobManager._runner, root=tmp_path)
        replayed = revived.get(job.id)
        assert replayed is not None and replayed.done
        assert [canonical_json(e) for e in replayed.events(timeout=1.0)] == [
            canonical_json(e) for e in job.events(timeout=1.0)
        ]

    def test_running_and_in_memory_jobs_do_not_compact(self, tmp_path):
        journal = JobJournal.create(tmp_path / "job-0001", "job-0001", {})
        chain = _chain_seed("job-0001")
        chain = journal.append({"event": "started", "job": "job-0001"}, chain)
        manager = JobManager(lambda job: {}, root=tmp_path)
        # Recovery re-enqueues the unfinished job; grab it pre-terminal.
        job = Job("job-0002", {})  # journal-less job
        assert not job.compact()
        memory_manager = JobManager(TestPersistentJobManager._runner)
        memory_job = memory_manager.submit({})
        _wait_done(memory_job)
        assert memory_manager.compact() == 0  # nothing on disk to compact


class TestChannelMetrics:
    def test_observe_channel_has_its_own_buckets(self):
        metrics = ServiceMetrics()
        metrics.observe("/predict", 0.001)
        for seconds in (0.001, 0.002, 0.003):
            metrics.observe_channel("fast", seconds)
        metrics.observe_channel("default", 0.004, error=True)
        snapshot = metrics.snapshot()
        assert snapshot["endpoints"]["/predict"]["count"] == 1
        assert set(snapshot["channels"]) == {"fast", "default"}
        fast = snapshot["channels"]["fast"]
        assert fast["count"] == 3 and fast["errors"] == 0
        assert fast["latency_ms"]["p50"] == pytest.approx(2.0)
        assert snapshot["channels"]["default"]["errors"] == 1

    def test_predict_attributes_requests_to_channels(self, deployment):
        svc = PredictionService(deployment, batching=False)
        payload = _counters_payload(deployment)
        svc.predict(dict(payload))  # defaults to the service channel
        svc.predict({**payload, "channel": "fast"})
        svc.predict({"items": [dict(payload)], "channel": "fast"})
        channels = svc.metrics_snapshot()["channels"]
        assert channels[svc.channel]["count"] == 1
        assert channels["fast"]["count"] == 2

    def test_channel_errors_are_attributed(self, deployment):
        svc = PredictionService(deployment, batching=False)
        with pytest.raises(ServiceError):
            svc.predict(
                {**_counters_payload(deployment), "channel": "staging"}
            )
        channels = svc.metrics_snapshot()["channels"]
        assert channels["staging"]["count"] == 1
        assert channels["staging"]["errors"] == 1

    def test_batched_requests_count_toward_channels(self, deployment):
        svc = PredictionService(deployment)  # micro-batcher on
        payload = _counters_payload(deployment)
        svc.predict(dict(payload))
        channels = svc.metrics_snapshot()["channels"]
        assert channels[svc.channel]["count"] == 1
