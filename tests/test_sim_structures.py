"""Tests for the trace-tier structures: caches, BTB, predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.branch import BimodalPredictor, BranchTargetBuffer, BranchUnit
from repro.sim.cache import SetAssociativeCache


class TestSetAssociativeCache:
    def test_first_access_misses(self):
        cache = SetAssociativeCache(1024, 2, 32)
        assert not cache.access(0)
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = SetAssociativeCache(1024, 2, 32)
        cache.access(0)
        assert cache.access(0)
        assert cache.stats.misses == 1

    def test_same_block_hits(self):
        cache = SetAssociativeCache(1024, 2, 32)
        cache.access(0)
        assert cache.access(31)
        assert not cache.access(32)

    def test_lru_eviction(self):
        # Direct-mapped-like: 2 ways, addresses mapping to one set.
        cache = SetAssociativeCache(size_bytes=64, assoc=2, block_bytes=32)
        # One set only: size/(assoc*block) = 1.
        cache.access(0)
        cache.access(32)
        cache.access(0)  # touch: 32 becomes LRU
        cache.access(64)  # evicts 32
        assert cache.access(0)
        assert not cache.access(32)

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = SetAssociativeCache(4096, 4, 32)
        addresses = list(range(0, 4096, 32))
        for address in addresses:
            cache.access(address)
        cache.reset_stats()
        for _ in range(3):
            for address in addresses:
                assert cache.access(address)

    def test_cyclic_overflow_thrashes_with_lru(self):
        # The classic pathology the analytic model's thrash term reproduces.
        cache = SetAssociativeCache(4096, 4, 32)
        addresses = list(range(0, 8192, 32))  # 2x capacity
        for _ in range(3):
            for address in addresses:
                cache.access(address)
        cache.reset_stats()
        for address in addresses:
            cache.access(address)
        assert cache.stats.miss_rate == 1.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 32)

    def test_flush(self):
        cache = SetAssociativeCache(1024, 2, 32)
        cache.access(0)
        cache.flush()
        assert cache.occupancy() == 0
        assert not cache.access(0)

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(2048, 4, 32)
        for address in addresses:
            cache.access(address)
        assert cache.occupancy() <= 2048 // 32

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_unique_blocks_lower_bound_misses(self, addresses):
        cache = SetAssociativeCache(2048, 4, 32)
        for address in addresses:
            cache.access(address)
        unique_blocks = len({address // 32 for address in addresses})
        assert cache.stats.misses >= min(unique_blocks, 1)
        assert cache.stats.misses <= len(addresses)


class TestBranchTargetBuffer:
    def test_capacity_hit_after_allocation(self):
        btb = BranchTargetBuffer(entries=128, assoc=1)
        assert not btb.lookup(10)
        assert btb.lookup(10)

    def test_conflict_eviction_direct_mapped(self):
        btb = BranchTargetBuffer(entries=4, assoc=1)
        btb.lookup(0)
        btb.lookup(4)  # same set, evicts 0
        assert not btb.lookup(0)

    def test_associativity_avoids_conflict(self):
        btb = BranchTargetBuffer(entries=4, assoc=2)
        btb.lookup(0)
        btb.lookup(2)  # 2 sets: pc 0 and 2 share set 0 with 2 ways
        assert btb.lookup(0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=3)


class TestBimodalPredictor:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(entries=16)
        for _ in range(4):
            predictor.update(3, taken=True)
        assert predictor.predict(3)

    def test_forgets_under_opposite_stream(self):
        predictor = BimodalPredictor(entries=16)
        for _ in range(4):
            predictor.update(3, taken=True)
        for _ in range(4):
            predictor.update(3, taken=False)
        assert not predictor.predict(3)


class TestBranchUnit:
    def test_predictable_loop_branch_low_mispredicts(self):
        unit = BranchUnit(btb_entries=128, btb_assoc=2)
        for index in range(200):
            unit.execute(pc=7, taken=index % 100 != 99)
        assert unit.stats.misprediction_rate < 0.1

    def test_btb_capacity_pressure(self):
        unit = BranchUnit(btb_entries=16, btb_assoc=1)
        # 64 distinct taken branches round-robin: capacity misses dominate.
        for _ in range(10):
            for pc in range(64):
                unit.execute(pc=pc, taken=True)
        assert unit.stats.btb_miss_rate > 0.5
