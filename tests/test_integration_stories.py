"""Integration tests: the paper's qualitative stories must hold end-to-end.

Each test reproduces one claim from the paper's narrative using the public
API only — these are the invariants EXPERIMENTS.md reports at full scale.
"""

import pytest

from repro.compiler import Compiler, o3_setting
from repro.machine import MicroArchSpace, xscale, xscale_small_icache
from repro.programs import mibench_program
from repro.sim import simulate, simulate_analytic


@pytest.fixture(scope="module")
def shared_compiler():
    return Compiler()


def _speedup(compiler, name, machine, **overrides):
    program = mibench_program(name)
    baseline = simulate_analytic(
        compiler.compile(program, o3_setting()), machine
    ).seconds
    tuned = simulate_analytic(
        compiler.compile(program, o3_setting().with_values(**overrides)), machine
    ).seconds
    return baseline / tuned


class TestRijndaelStory:
    """§5.2: rijndael_e peaks on a small-instruction-cache machine once the
    code-bloating -O3 passes are disabled; unrolling plays no role because
    the source is already unrolled."""

    MINIMAL = dict(
        finline_functions=False,
        fschedule_insns=False,
        funswitch_loops=False,
        falign_functions=False,
        falign_jumps=False,
        falign_loops=False,
        falign_labels=False,
    )

    def test_big_win_on_small_icache(self, shared_compiler):
        speedup = _speedup(
            shared_compiler, "rijndael_e", xscale_small_icache(), **self.MINIMAL
        )
        assert speedup > 2.0

    def test_no_win_on_big_icache(self, shared_compiler):
        speedup = _speedup(shared_compiler, "rijndael_e", xscale(), **self.MINIMAL)
        assert 0.9 < speedup < 1.2

    def test_unrolling_is_futile(self, shared_compiler):
        # "No loop unrolling is performed because there is already
        # extensive, optimised software loop unrolling programmed into the
        # source code."
        program = mibench_program("rijndael_e")
        unrolled = shared_compiler.compile(
            program,
            o3_setting().with_values(
                funroll_loops=True, param_max_unrolled_insns=400
            ),
        )
        assert unrolled.stats["unroll.loops"] == 0

    def test_o3_footprint_exceeds_small_cache(self, shared_compiler):
        program = mibench_program("rijndael_e")
        binary = shared_compiler.compile(program, o3_setting())
        hot_loop_span = max(loop.code_bytes for loop in binary.loops)
        assert hot_loop_span > 4096  # overflows the 4K I-cache


class TestCrcStory:
    """§5.3: crc's helper keeps a pointer in memory; only inlining with a
    larger-than-default budget turns that traffic into register moves."""

    def test_default_budget_does_not_inline(self, shared_compiler):
        binary = shared_compiler.compile(mibench_program("crc"), o3_setting())
        assert binary.stats["inline.sites"] == 0

    def test_large_budget_inlines_and_wins(self, shared_compiler):
        speedup = _speedup(
            shared_compiler,
            "crc",
            xscale(),
            param_max_inline_insns_auto=360,
        )
        assert speedup > 1.1

    def test_inlining_removes_memory_traffic(self, shared_compiler):
        program = mibench_program("crc")
        default = shared_compiler.compile(program, o3_setting())
        inlined = shared_compiler.compile(
            program, o3_setting().with_values(param_max_inline_insns_auto=360)
        )
        assert inlined.dyn_memory < default.dyn_memory
        assert inlined.dyn_calls < default.dyn_calls


class TestSearchStory:
    """Figure 8: for search, the unrolling family is the dominant lever."""

    def test_unroll_gives_big_win(self, shared_compiler):
        speedup = _speedup(
            shared_compiler, "search", xscale(), funroll_loops=True,
            param_max_unroll_times=16,
        )
        assert speedup > 1.3

    def test_unroll_needs_budget(self, shared_compiler):
        generous = _speedup(
            shared_compiler,
            "search",
            xscale(),
            funroll_loops=True,
            param_max_unroll_times=16,
            param_max_unrolled_insns=400,
        )
        stingy = _speedup(
            shared_compiler,
            "search",
            xscale(),
            funroll_loops=True,
            param_max_unroll_times=2,
            param_max_unrolled_insns=50,
        )
        assert generous > stingy


class TestSchedulingSpillStory:
    """§5.4: scheduling's register pressure emits spill code; on small
    instruction caches the extra code size can make it a net loss."""

    def test_scheduling_adds_spill_traffic(self, shared_compiler):
        program = mibench_program("madplay")
        scheduled = shared_compiler.compile(program, o3_setting())
        unscheduled = shared_compiler.compile(
            program, o3_setting().with_values(fschedule_insns=False)
        )
        assert scheduled.spill_dyn >= unscheduled.spill_dyn

    def test_scheduling_helps_on_reference_machine(self, shared_compiler):
        # On the roomy 32K XScale, scheduling is a clear win.
        speedup = _speedup(
            shared_compiler, "madplay", xscale(), fschedule_insns=False
        )
        assert speedup < 1.0  # disabling it loses performance


class TestSerialProgramsStory:
    """Figure 4's flat left end: library-bound and serial kernels have
    little headroom no matter what the compiler does."""

    @pytest.mark.parametrize("name", ["qsort", "rawcaudio", "basicmath"])
    def test_flat_programs_insensitive(self, shared_compiler, name):
        program = mibench_program(name)
        baseline = simulate_analytic(
            shared_compiler.compile(program, o3_setting()), xscale()
        ).seconds
        variants = [
            o3_setting().with_values(funroll_loops=True),
            o3_setting().with_values(fschedule_insns=False),
            o3_setting().with_values(finline_functions=False),
        ]
        for setting in variants:
            tuned = simulate_analytic(
                shared_compiler.compile(program, setting), xscale()
            ).seconds
            assert 0.7 < baseline / tuned < 1.3


class TestSimulateConvenience:
    def test_simulate_accepts_program(self):
        result = simulate(mibench_program("sha"), xscale())
        assert result.cycles > 0

    def test_simulate_accepts_binary(self, shared_compiler):
        binary = shared_compiler.compile(mibench_program("sha"), o3_setting())
        result = simulate(binary, xscale())
        assert result.cycles > 0

    def test_simulate_with_custom_setting(self):
        default = simulate(mibench_program("search"), xscale())
        unrolled = simulate(
            mibench_program("search"),
            xscale(),
            setting=o3_setting().with_values(funroll_loops=True),
        )
        assert unrolled.seconds != default.seconds


class TestDesignSpaceBreadth:
    """The sampled space must exercise the model's feature axes."""

    def test_icache_axis_changes_ranking(self, shared_compiler):
        # The best of two settings flips between machines: the crux of the
        # paper's portability argument.  Compare O3 against O3 minus its
        # code-growing passes (scheduling left on in both, since its
        # stall-vs-spill trade-off is machine-independent for this program).
        program = mibench_program("rijndael_e")
        aggressive = shared_compiler.compile(program, o3_setting())
        minimal = shared_compiler.compile(
            program,
            o3_setting().with_values(
                finline_functions=False,
                funswitch_loops=False,
                falign_functions=False,
                falign_jumps=False,
                falign_loops=False,
                falign_labels=False,
            ),
        )
        big = xscale()
        small = xscale_small_icache()
        on_big = (
            simulate_analytic(aggressive, big).seconds
            < simulate_analytic(minimal, big).seconds
        )
        on_small = (
            simulate_analytic(aggressive, small).seconds
            < simulate_analytic(minimal, small).seconds
        )
        assert on_big != on_small

    def test_counters_vary_across_machines(self, shared_compiler):
        program = mibench_program("madplay")
        binary = shared_compiler.compile(program, o3_setting())
        machines = MicroArchSpace().sample(8, seed=11)
        ipcs = {
            round(simulate_analytic(binary, machine).counters.ipc, 6)
            for machine in machines
        }
        assert len(ipcs) > 4
