"""Tests for the §9 future-work extensions: clustering + code features."""

import numpy as np
import pytest

from repro.compiler.flags import o3_setting
from repro.core.clustering import (
    k_medoids,
    pair_feature_matrix,
    reduce_training_set,
    training_cost,
)
from repro.core.code_features import CODE_FEATURE_NAMES, static_code_features
from repro.core.crossval import leave_one_out
from repro.core.predictor import OptimisationPredictor
from repro.programs import mibench_program


class TestCodeFeatures:
    def test_feature_vector_length(self, tiny_data):
        binary = tiny_data.compiler.compile(tiny_data.programs[0], o3_setting())
        features = static_code_features(binary)
        assert len(features) == len(CODE_FEATURE_NAMES)
        assert all(np.isfinite(features))

    def test_call_bound_programs_distinguishable(self, compiler):
        crc = static_code_features(
            compiler.compile(mibench_program("crc"), o3_setting())
        )
        search = static_code_features(
            compiler.compile(mibench_program("search"), o3_setting())
        )
        call_density = CODE_FEATURE_NAMES.index("call_density")
        assert crc[call_density] > search[call_density]

    def test_big_code_programs_distinguishable(self, compiler):
        rijndael = static_code_features(
            compiler.compile(mibench_program("rijndael_e"), o3_setting())
        )
        search = static_code_features(
            compiler.compile(mibench_program("search"), o3_setting())
        )
        span = CODE_FEATURE_NAMES.index("log_max_loop_span")
        assert rijndael[span] > search[span]

    def test_training_set_carries_code_features(self, tiny_data):
        features = tiny_data.training.code_features
        assert features is not None
        assert features.shape == (
            len(tiny_data.training.program_names),
            len(CODE_FEATURE_NAMES),
        )

    def test_with_code_predictor_roundtrip(self, tiny_data):
        from repro.sim.counters import PerfCounters

        predictor = OptimisationPredictor(feature_mode="with_code").fit(
            tiny_data.training
        )
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        setting = predictor.predict(
            counters,
            tiny_data.machines[0],
            code_features=tiny_data.training.code_features[0, :],
        )
        assert setting is not None

    def test_with_code_requires_features_at_predict(self, tiny_data):
        from repro.sim.counters import PerfCounters

        predictor = OptimisationPredictor(feature_mode="with_code").fit(
            tiny_data.training
        )
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        with pytest.raises(ValueError, match="code"):
            predictor.predict(counters, tiny_data.machines[0])

    def test_with_code_crossval_runs(self, tiny_data):
        predictor = OptimisationPredictor(feature_mode="with_code")
        result = leave_one_out(
            tiny_data.training,
            tiny_data.programs,
            compiler=tiny_data.compiler,
            predictor=predictor,
        )
        assert len(result.outcomes) == len(tiny_data.training.program_names) * len(
            tiny_data.training.machines
        )


class TestKMedoids:
    def _blobs(self):
        rng = np.random.default_rng(0)
        left = rng.normal(loc=0.0, scale=0.3, size=(20, 3))
        right = rng.normal(loc=5.0, scale=0.3, size=(20, 3))
        return np.vstack([left, right])

    def test_two_clusters_found(self):
        features = self._blobs()
        result = k_medoids(features, k=2)
        assert len(result.medoid_indices) == 2
        sides = {index // 20 for index in result.medoid_indices}
        assert sides == {0, 1}  # one medoid per blob

    def test_assignments_consistent(self):
        features = self._blobs()
        result = k_medoids(features, k=2)
        assert len(result.assignments) == 40
        # Points assign to the medoid from their own blob.
        for point, medoid_position in enumerate(result.assignments):
            medoid = result.medoid_indices[medoid_position]
            assert (point // 20) == (medoid // 20)

    def test_k_equals_n_zero_distance(self):
        features = self._blobs()[:5]
        result = k_medoids(features, k=5)
        assert result.total_distance == pytest.approx(0.0)

    def test_deterministic(self):
        features = self._blobs()
        assert (
            k_medoids(features, 3).medoid_indices
            == k_medoids(features, 3).medoid_indices
        )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_medoids(self._blobs(), k=0)
        with pytest.raises(ValueError):
            k_medoids(self._blobs(), k=41)

    def test_more_medoids_never_worse(self):
        features = self._blobs()
        coarse = k_medoids(features, 2).total_distance
        fine = k_medoids(features, 8).total_distance
        assert fine <= coarse + 1e-9


class TestTrainingReduction:
    def test_pair_feature_matrix_shape(self, tiny_data):
        matrix = pair_feature_matrix(tiny_data.training)
        P = len(tiny_data.training.program_names)
        M = len(tiny_data.training.machines)
        assert matrix.shape[0] == P * M

    def test_reduction_shrinks_cost(self, tiny_data):
        full_cost = training_cost(tiny_data.training)
        reduced = reduce_training_set(tiny_data.training, k=6)
        assert training_cost(reduced) < full_cost
        assert reduced.metadata["reduced_to_medoids"] == 6

    def test_reduced_set_is_consistent_subset(self, tiny_data):
        reduced = reduce_training_set(tiny_data.training, k=6)
        training = tiny_data.training
        for name in reduced.program_names:
            assert name in training.program_names
        for machine in reduced.machines:
            assert machine in training.machines
        # Spot-check one runtime cell against the full set.
        p_full = training.program_index(reduced.program_names[0])
        m_full = training.machine_index(reduced.machines[0])
        assert reduced.runtimes[0, 0, 0] == pytest.approx(
            training.runtimes[p_full, 0, m_full]
        )

    def test_model_on_reduced_set_still_useful(self, tiny_data):
        """The §9 claim: clustering can cut training cost while keeping
        most of the model's benefit."""
        reduced = reduce_training_set(tiny_data.training, k=12)
        predictor = OptimisationPredictor().fit(reduced)
        # Evaluate on the *full* pair grid.
        result = leave_one_out(
            tiny_data.training,
            tiny_data.programs,
            compiler=tiny_data.compiler,
            predictor=predictor,
        )
        random_mean = tiny_data.training.speedups().mean()
        assert result.mean_speedup() > random_mean
