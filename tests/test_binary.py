"""Tests for binary finalisation (repro.compiler.binary)."""

import pytest

from repro.compiler.binary import finalize
from repro.compiler.flags import o3_setting
from repro.compiler.ir import Instruction, Opcode
from tests.conftest import simple_loop_program


class TestFinalize:
    def test_code_bytes_match_program(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert binary.code_bytes == loop_program.size_bytes

    def test_dynamic_insns_match_profile(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert binary.dyn_insns == pytest.approx(loop_program.dynamic_insns)

    def test_mix_sums_to_dynamic_insns(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert sum(binary.mix.values()) == pytest.approx(binary.dyn_insns)

    def test_branches_counted(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        loop = loop_program.functions["main"].loops[0]
        # latch BR per iteration + final RET.
        assert binary.dyn_branches == pytest.approx(loop.iterations + 10.0, rel=0.01)

    def test_taken_fraction_weighted_by_probability(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        loop = loop_program.functions["main"].loops[0]
        latch = loop_program.functions["main"].blocks["latch"]
        expected_taken = loop.iterations * latch.taken_prob + 10.0  # RET taken
        assert binary.dyn_taken == pytest.approx(expected_taken, rel=0.01)

    def test_branch_sites_static_count(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert binary.branch_sites == 2  # latch BR + exit RET

    def test_loop_summary_structure(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert len(binary.loops) == 1
        summary = binary.loops[0]
        loop = loop_program.functions["main"].loops[0]
        assert summary.iterations == pytest.approx(loop.iterations)
        assert summary.entries == pytest.approx(loop.entries)
        assert summary.header == "hdr"

    def test_loop_span_covers_member_blocks(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        function = loop_program.functions["main"]
        member_bytes = sum(
            function.blocks[label].size_bytes
            for label in function.loops[0].blocks
        )
        assert binary.loops[0].code_bytes == member_bytes

    def test_loop_span_includes_interleaved_cold_code(self):
        program = simple_loop_program()
        function = program.functions["main"]
        from repro.compiler.ir import BasicBlock

        cold = BasicBlock(
            "cold",
            [Instruction(opcode=Opcode.ADD, expr="c") for _ in range(8)],
            successors=["latch"],
            exec_count=0.0,
        )
        function.blocks["cold"] = cold
        function.layout.insert(function.layout.index("latch"), "cold")
        binary = finalize(program, o3_setting())
        member_bytes = sum(
            function.blocks[label].size_bytes
            for label in function.loops[0].blocks
        )
        assert binary.loops[0].code_bytes == member_bytes + cold.size_bytes

    def test_loop_accesses_aggregated(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        accesses = binary.loops[0].accesses
        assert len(accesses) == 1
        access = accesses[0]
        assert access.region == "data"
        assert access.stride == 4
        assert not access.is_store
        loop = loop_program.functions["main"].loops[0]
        assert access.count == pytest.approx(loop.iterations)

    def test_flat_accesses_exclude_loop_blocks(self, loop_program):
        entry = loop_program.functions["main"].blocks["entry"]
        entry.instructions.append(
            Instruction(opcode=Opcode.LOAD, expr="cold", region="data", stride=0)
        )
        binary = finalize(loop_program, o3_setting())
        assert len(binary.flat_accesses) == 1
        assert binary.flat_accesses[0].count == pytest.approx(1.0)

    def test_stall_profile_counts_weighted(self, loop_program):
        body = loop_program.functions["main"].blocks["body"]
        body.instructions[3].deps = ((2, "load"),)
        binary = finalize(loop_program, o3_setting())
        loop = loop_program.functions["main"].loops[0]
        assert binary.stall_profile[("load", 2)] == pytest.approx(loop.iterations)

    def test_long_distances_dropped_from_profile(self, loop_program):
        body = loop_program.functions["main"].blocks["body"]
        body.instructions[3].deps = ((40, "load"),)
        binary = finalize(loop_program, o3_setting())
        assert ("load", 40) not in binary.stall_profile

    def test_hot_code_bytes_below_total(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert 0 < binary.hot_code_bytes <= binary.code_bytes

    def test_reg_reads_positive(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert binary.reg_reads > binary.dyn_insns  # most ops read >= 1

    def test_describe_mentions_name(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert loop_program.name in binary.describe()

    def test_memory_properties(self, loop_program):
        binary = finalize(loop_program, o3_setting())
        assert binary.dyn_memory == pytest.approx(
            binary.dyn_loads + binary.dyn_stores
        )
        assert binary.dyn_loads > 0
