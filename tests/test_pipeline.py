"""Tests for the compiler pipeline (pass manager + memoisation)."""

import pytest

from repro.compiler.flags import o0_setting, o3_setting
from repro.compiler.pipeline import Compiler, default_pass_order
from repro.programs import mibench_names, mibench_program
from tests.conftest import simple_loop_program


class TestPassOrder:
    def test_schedule_before_regalloc(self):
        names = [type(p).__name__ for p in default_pass_order()]
        assert names.index("ScheduleInsnsPass") < names.index(
            "RegisterAllocationPass"
        )

    def test_after_reload_after_regalloc(self):
        names = [type(p).__name__ for p in default_pass_order()]
        assert names.index("RegisterAllocationPass") < names.index(
            "GcseAfterReloadPass"
        )

    def test_inline_before_loop_passes(self):
        names = [type(p).__name__ for p in default_pass_order()]
        assert names.index("InlineFunctionsPass") < names.index("UnrollLoopsPass")

    def test_rerun_cse_after_unroll(self):
        names = [type(p).__name__ for p in default_pass_order()]
        assert names.index("UnrollLoopsPass") < names.index("RerunCsePass")

    def test_layout_passes_last(self):
        names = [type(p).__name__ for p in default_pass_order()]
        assert names[-2:] == ["ReorderBlocksPass", "AlignPass"]


class TestCompiler:
    def test_source_program_not_mutated(self, compiler, o3):
        program = simple_loop_program()
        before = program.size_insns
        compiler.compile(program, o3)
        assert program.size_insns == before

    def test_deterministic(self, o3):
        program = simple_loop_program()
        one = Compiler(cache=False).compile(program, o3)
        two = Compiler(cache=False).compile(program, o3)
        assert one.code_bytes == two.code_bytes
        assert one.dyn_insns == pytest.approx(two.dyn_insns)
        assert one.stall_profile == two.stall_profile

    def test_cache_hit_returns_same_object(self, compiler, o3):
        program = simple_loop_program()
        assert compiler.compile(program, o3) is compiler.compile(program, o3)

    def test_cache_respects_canonicalisation(self, compiler):
        program = simple_loop_program()
        one = o3_setting().with_values(fgcse=False, fgcse_sm=True)
        two = o3_setting().with_values(fgcse=False, fgcse_sm=False)
        assert compiler.compile(program, one) is compiler.compile(program, two)

    def test_different_settings_different_binaries(self, compiler):
        program = simple_loop_program()
        aggressive = compiler.compile(program, o3_setting())
        minimal = compiler.compile(program, o0_setting())
        assert aggressive.setting != minimal.setting

    def test_elimination_passes_shrink_dynamic_count(self, compiler):
        # With everything else held fixed, disabling the elimination passes
        # must leave more dynamic instructions on a redundancy-rich program.
        program = mibench_program("bf_e")
        full = compiler.compile(program, o3_setting())
        no_elim = compiler.compile(
            program,
            o3_setting().with_values(
                fgcse=False, ftree_pre=False, ftree_vrp=False, fpeephole2=False
            ),
        )
        assert no_elim.dyn_insns > full.dyn_insns

    def test_clear_cache(self, compiler, o3):
        program = simple_loop_program()
        compiler.compile(program, o3)
        assert compiler.cache_info()["entries"] == 1
        compiler.clear_cache()
        assert compiler.cache_info()["entries"] == 0


class TestMiBenchCompilation:
    @pytest.mark.parametrize("name", mibench_names())
    def test_compiles_and_validates_at_o3(self, compiler, name):
        binary = compiler.compile(mibench_program(name), o3_setting())
        assert binary.dyn_insns > 0
        assert binary.code_bytes > 0
        assert binary.loops

    @pytest.mark.parametrize(
        "name", ["rijndael_e", "search", "crc", "qsort", "madplay"]
    )
    def test_compiles_under_varied_settings(self, compiler, name):
        program = mibench_program(name)
        settings = [
            o0_setting(),
            o3_setting().with_values(funroll_loops=True),
            o3_setting().with_values(finline_functions=False),
            o3_setting().with_values(fschedule_insns=False),
            o3_setting().with_values(fgcse_sm=True, fgcse_las=True),
        ]
        for setting in settings:
            binary = compiler.compile(program, setting)
            assert binary.dyn_insns > 0
