"""Tests for the repro.api Session façade: backends, batching, lifecycle."""

import json
import os

import numpy as np
import pytest

from repro.api import (
    AnalyticBackend,
    EvaluationRequest,
    SearchRequest,
    Session,
    SimulatorBackend,
    TraceBackend,
    load_predictor,
    resolve_backend,
    resolve_jobs,
    run_batch,
)
from repro.compiler.flags import o3_setting
from repro.experiments.config import Scale
from repro.machine.xscale import xscale, xscale_small_icache
from repro.sim.analytic import simulate_analytic


@pytest.fixture(scope="module")
def session():
    return Session("tiny", use_disk_cache=False)


def _square(value):
    # module-level so the process executor can pickle it
    return value * value


class TestParallelHelpers:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_run_batch_preserves_order(self):
        items = list(range(17))
        assert run_batch(_square, items) == [i * i for i in items]
        assert run_batch(_square, items, jobs=4, executor="thread") == [
            i * i for i in items
        ]
        assert run_batch(_square, items, jobs=2, executor="process") == [
            i * i for i in items
        ]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_batch(_square, [1], executor="gpu")


class TestBackends:
    def test_resolution(self):
        assert resolve_backend(None).name == "analytic"
        assert resolve_backend("analytic").name == "analytic"
        assert resolve_backend("trace").name == "trace"
        assert resolve_backend(TraceBackend).name == "trace"
        backend = TraceBackend(max_loop_iterations=64)
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_protocol_conformance(self):
        assert isinstance(AnalyticBackend(), SimulatorBackend)
        assert isinstance(TraceBackend(), SimulatorBackend)

    def test_analytic_backend_matches_simulator(self, session):
        binary = session.compile("sha")
        machine = xscale()
        via_backend = AnalyticBackend().run(binary, machine)
        direct = simulate_analytic(binary, machine)
        assert via_backend.seconds == direct.seconds
        assert via_backend.counters == direct.counters

    def test_trace_backend_is_deterministic(self, session):
        binary = session.compile("crc")
        machine = xscale_small_icache()
        one = TraceBackend().run(binary, machine)
        two = TraceBackend().run(binary, machine)
        assert one.seconds == two.seconds
        assert one.counters == two.counters

    def test_backends_swappable_via_same_call(self, session):
        machine = xscale()
        analytic = session.evaluate("sha", machine)
        trace = session.evaluate("sha", machine, backend="trace")
        assert analytic.backend == "analytic"
        assert trace.backend == "trace"
        assert analytic.runtime > 0 and trace.runtime > 0
        # Same program/setting/machine provenance either way.
        assert analytic.program == trace.program == "sha"
        assert analytic.setting == trace.setting


class TestEvaluate:
    def test_default_setting_is_o3(self, session):
        result = session.evaluate("sha", xscale())
        assert result.setting == o3_setting()
        assert result.runtime == pytest.approx(result.simulation.seconds)
        assert result.cycles > 0
        assert result.energy_nj > 0

    def test_request_object_and_kwargs_agree(self, session):
        machine = xscale()
        via_request = session.evaluate(EvaluationRequest("crc", machine))
        via_kwargs = session.evaluate("crc", machine)
        assert via_request == via_kwargs

    def test_machine_required(self, session):
        with pytest.raises(TypeError):
            session.evaluate("sha")

    def test_speedup_of_o3_is_one(self, session):
        assert session.speedup_over_o3(
            "sha", xscale(), o3_setting()
        ) == pytest.approx(1.0)

    def test_batch_accepts_tuples_and_preserves_order(self, session):
        machine = xscale()
        names = ["sha", "crc", "qsort", "sha"]
        results = session.evaluate_batch([(name, machine) for name in names])
        assert [result.program for result in results] == names

    def test_batch_parallel_equals_serial(self, session):
        machines = [xscale(), xscale_small_icache()]
        lean = o3_setting().with_values(finline_functions=False)
        requests = [
            EvaluationRequest(name, machine, setting)
            for name in ("sha", "crc")
            for machine in machines
            for setting in (None, lean)
        ]
        serial = session.evaluate_batch(requests, jobs=1)
        threaded = session.evaluate_batch(requests, jobs=2, executor="thread")
        processed = session.evaluate_batch(requests, jobs=2, executor="process")
        for reference, thread_run, process_run in zip(serial, threaded, processed):
            assert thread_run == reference
            assert process_run == reference

    def test_batch_backend_override_per_request(self, session):
        machine = xscale()
        results = session.evaluate_batch(
            [
                EvaluationRequest("crc", machine),
                EvaluationRequest("crc", machine, backend="trace"),
            ]
        )
        assert [result.backend for result in results] == ["analytic", "trace"]


class TestModelLifecycle:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_data):
        fitted_session = Session("tiny", use_disk_cache=False)
        fitted_session.fit(tiny_data.training)
        return fitted_session

    def test_fit_records_fingerprint(self, fitted, tiny_data):
        assert fitted.model is not None
        assert fitted.model_fingerprint == tiny_data.training.fingerprint()

    def test_fingerprint_tracks_content(self, tiny_data):
        training = tiny_data.training
        tweaked_runtimes = training.runtimes.copy()
        tweaked_runtimes[0, 0, 0] *= 1.5
        import dataclasses

        tweaked = dataclasses.replace(training, runtimes=tweaked_runtimes)
        assert tweaked.fingerprint() != training.fingerprint()

    def test_predict_requires_model(self):
        with pytest.raises(RuntimeError):
            Session("tiny").predict("sha", xscale())

    def test_save_requires_model(self, tmp_path):
        with pytest.raises(RuntimeError):
            Session("tiny").save_model(tmp_path / "model.json")

    def test_predict_returns_speedup(self, fitted, tiny_data):
        machine = tiny_data.machines[0]
        prediction = fitted.predict(
            "sha", machine, exclude_program="sha", exclude_machine=machine
        )
        assert prediction.program == "sha"
        assert prediction.speedup_over_o3 is not None
        assert prediction.speedup_over_o3 > 0
        profile_only = fitted.predict("sha", machine, evaluate=False)
        assert profile_only.predicted_run is None
        assert profile_only.speedup_over_o3 is None

    def test_save_load_round_trip_bit_for_bit(self, fitted, tiny_data, tmp_path):
        path = fitted.save_model(tmp_path / "model.json")
        restored_session = Session("tiny", use_disk_cache=False)
        restored_session.load_model(path)
        assert restored_session.model_fingerprint == fitted.model_fingerprint

        for name in tiny_data.training.program_names[:3]:
            for machine in tiny_data.machines[:2]:
                original = fitted.predict(name, machine, evaluate=False)
                restored = restored_session.predict(name, machine, evaluate=False)
                assert restored.setting == original.setting
                assert restored.profile.seconds == original.profile.seconds

        # The full predictive distribution survives exactly, not just the mode.
        machine = tiny_data.machines[0]
        counters = fitted.evaluate("sha", machine).counters
        original = fitted.model.predict_distribution(counters, machine)
        restored = restored_session.model.predict_distribution(counters, machine)
        for probs_a, probs_b in zip(original.theta, restored.theta):
            assert np.array_equal(probs_a, probs_b)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "model": {}}))
        with pytest.raises(ValueError):
            load_predictor(path)


class TestSearchApi:
    def test_search_runs_and_reports(self, session):
        outcome = session.search(
            program="crc", machine=xscale(), algorithm="random", budget=12, seed=3
        )
        assert outcome.algorithm == "random"
        assert outcome.evaluations == 12
        assert len(outcome.trajectory) == 12
        assert outcome.best_runtime <= outcome.trajectory[0]
        assert outcome.best_speedup > 0
        assert outcome.evaluations_to_reach(float("inf")) == 1
        assert outcome.evaluations_to_reach(0.0) is None

    def test_search_request_object(self, session):
        request = SearchRequest(
            program="crc", machine=xscale(), algorithm="random", budget=5, seed=3
        )
        outcome = session.search(request)
        assert outcome.evaluations == 5
        with pytest.raises(TypeError):
            session.search(request, budget=5)

    def test_unknown_algorithm_rejected(self, session):
        with pytest.raises(ValueError):
            session.search(program="crc", machine=xscale(), algorithm="bogus")

    def test_search_on_trace_backend(self, session):
        outcome = session.search(
            program="crc",
            machine=xscale(),
            algorithm="random",
            budget=4,
            seed=3,
            backend=TraceBackend(max_loop_iterations=64),
        )
        analytic = session.search(
            program="crc", machine=xscale(), algorithm="random", budget=4, seed=3
        )
        # Same protocol, different timing tier: the o3 reference differs.
        assert outcome.evaluations == analytic.evaluations == 4
        assert outcome.o3_runtime != analytic.o3_runtime


class TestSessionConfig:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            Session("galactic")

    def test_disk_cache_honours_cache_dir(self, tmp_path):
        scale = Scale(
            name="apitest",
            programs=("crc", "sha"),
            n_machines=2,
            n_settings=2,
        )
        caching = Session(scale, cache_dir=tmp_path)
        data = caching.dataset()
        assert data.training.runtimes.shape == (2, 2, 2)
        store_dirs = list(tmp_path.glob("store-apitest-*"))
        assert len(store_dirs) == 1
        assert (store_dirs[0] / "manifest.json").exists()
        assert list((store_dirs[0] / "shards").glob("*.npz"))

    def test_dataset_build_with_jobs_matches_serial(self, tmp_path):
        from repro.core.training import generate_training_set
        from repro.programs.mibench import mibench_program

        session_for_machines = Session("tiny")
        machines = session_for_machines.machines(2, seed=5)
        programs = [mibench_program(name) for name in ("crc", "sha")]
        serial = generate_training_set(programs, machines, n_settings=3, seed=7)
        parallel = generate_training_set(
            programs, machines, n_settings=3, seed=7, jobs=2
        )
        assert np.array_equal(serial.runtimes, parallel.runtimes)
        assert np.array_equal(serial.o3_runtimes, parallel.o3_runtimes)
        assert np.array_equal(serial.counters, parallel.counters)
        assert np.array_equal(serial.code_features, parallel.code_features)
        assert serial.fingerprint() == parallel.fingerprint()

    def test_dataset_build_negative_jobs_and_custom_compiler(self):
        from repro.compiler.pipeline import Compiler
        from repro.core.training import generate_training_set
        from repro.programs.mibench import mibench_program

        machines = Session("tiny").machines(2, seed=5)
        programs = [mibench_program(name) for name in ("crc", "sha")]
        # A non-default compiler configuration must survive the process
        # boundary, and negative jobs must mean "all cores", not serial.
        serial = generate_training_set(
            programs, machines, n_settings=2, seed=7, compiler=Compiler(cache=False)
        )
        parallel = generate_training_set(
            programs,
            machines,
            n_settings=2,
            seed=7,
            compiler=Compiler(cache=False),
            jobs=-1,
        )
        assert np.array_equal(serial.runtimes, parallel.runtimes)
        assert serial.fingerprint() == parallel.fingerprint()

    def test_load_model_checks_flag_space(self, tmp_path, tiny_data):
        from repro.compiler.flags import FLAG_SPECS, FlagSpace

        fitted = Session("tiny", use_disk_cache=False)
        fitted.fit(tiny_data.training)
        path = fitted.save_model(tmp_path / "model.json")
        with pytest.raises(ValueError):
            load_predictor(path, space=FlagSpace(FLAG_SPECS[:5]))
