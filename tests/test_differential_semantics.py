"""Differential semantics-preservation fuzzing.

For randomly *generated* programs (arbitrary :class:`ProgramSpec` points,
not just the MiBench stand-ins) and random points of the 39-dimensional
flag space, the optimised binary's executed observable outputs — which
data regions it reads and writes, how often, and the region declarations
themselves — must match the unoptimised program's, as extracted by
:func:`repro.sim.executor.observable_outputs`.

A second class guards fold evaluation against silently swapping in a
different binary: the :class:`~repro.evalrun.oracle.RuntimeOracle`
verifies the program name and canonical flag setting of every compiled
binary before trusting its simulation.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import DEFAULT_SPACE, o3_setting
from repro.compiler.pipeline import Compiler
from repro.evalrun.oracle import OracleError, RuntimeOracle
from repro.programs.generator import build_program
from repro.programs.spec import (
    AccessSpec,
    CalleeSpec,
    LoopSpec,
    ProgramSpec,
    RegionSpec,
)
from repro.sim.executor import observable_outputs

REGION_KINDS = ("stream", "table", "chase")
REGION_SIZES = (256, 4096, 65536, 1 << 20)


def random_spec(seed: int) -> ProgramSpec:
    """An arbitrary but valid program spec, deterministic in ``seed``.

    Covers the structure space the generator understands — loop nests,
    callees, diamonds, every redundancy/pattern rate, all region kinds,
    zero and non-zero strides — so the fuzz walks pass interactions the
    hand-written MiBench specs never exercise.
    """
    rng = random.Random(seed)
    regions = tuple(
        RegionSpec(
            name=f"r{index}",
            size_bytes=rng.choice(REGION_SIZES),
            kind=rng.choice(REGION_KINDS),
        )
        for index in range(rng.randint(1, 3))
    )
    callees = []
    if rng.random() < 0.6:
        callees.append(
            CalleeSpec(name="leaf", body_insns=rng.randint(6, 24))
        )
    if len(callees) == 1 and rng.random() < 0.3:
        callees.append(
            CalleeSpec(
                name="tail", body_insns=rng.randint(4, 12),
                sibling_target="leaf",
            )
        )

    def accesses() -> tuple[AccessSpec, ...]:
        picked = rng.sample(list(regions), rng.randint(1, len(regions)))
        return tuple(
            AccessSpec(
                region=region.name,
                loads_per_iter=rng.randint(0, 2),
                stores_per_iter=rng.randint(0, 1),
                stride=rng.choice([0, 4, 8, 16]),
            )
            for region in picked
        )

    def loop(name: str, allow_inner: bool) -> LoopSpec:
        inner = (
            loop(f"{name}i", False)
            if allow_inner and rng.random() < 0.5
            else None
        )
        return LoopSpec(
            name=name,
            trip_count=rng.choice([4.0, 16.0, 64.0, 256.0]),
            dyn_insns=rng.choice([2e4, 1e5, 4e5]),
            body_blocks=rng.randint(1, 3),
            block_insns=rng.randint(6, 16),
            accesses=accesses(),
            calls=tuple(
                callee.name for callee in callees if rng.random() < 0.5
            ),
            inner=inner,
            carried_dep_latency=rng.choice([0, 0, 0, 3]),
            ilp=rng.uniform(1.0, 4.0),
            diamonds=rng.randint(0, 2),
            invariant_branch=rng.random() < 0.3,
            redundancy_local=rng.uniform(0.0, 0.2),
            redundancy_global=rng.uniform(0.0, 0.15),
            partial_redundancy=rng.uniform(0.0, 0.1),
            range_check_rate=rng.uniform(0.0, 0.1),
            invariant_alu_rate=rng.uniform(0.0, 0.15),
            invariant_load_rate=rng.uniform(0.0, 0.1),
            invariant_store_rate=rng.uniform(0.0, 0.1),
            after_store_rate=rng.uniform(0.0, 0.2),
            induction_rate=rng.uniform(0.0, 0.1),
            peephole_rate=rng.uniform(0.0, 0.1),
        )

    return ProgramSpec(
        name=f"fuzz{seed}",
        seed=seed,
        loops=tuple(
            loop(f"L{index}", True) for index in range(rng.randint(1, 2))
        ),
        regions=regions,
        callees=tuple(callees),
        mergeable_tails=((2, 8),) if rng.random() < 0.4 else (),
        jump_chains=rng.randint(0, 2),
    )


def _setting_from_seed(seed: int):
    return DEFAULT_SPACE.sample_many(1, seed=seed)[0]


class TestDifferentialSemantics:
    """Optimised execution == unoptimised execution, observably."""

    @given(
        program_seed=st.integers(min_value=0, max_value=2_000),
        setting_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_observables_preserved(self, program_seed, setting_seed):
        program = build_program(random_spec(program_seed))
        baseline = observable_outputs(program)
        setting = _setting_from_seed(setting_seed)
        binary = Compiler(cache=False).compile(program, setting)
        optimised = observable_outputs(binary)

        # The sets of regions read and written are exact program
        # semantics: no pass may add or remove a region's traffic.
        assert optimised["reads"] == baseline["reads"]
        assert optimised["writes"] == baseline["writes"]
        # Data is never reshaped, only code.
        assert optimised["regions"] == baseline["regions"]
        # Elimination and motion may only reduce dynamic traffic
        # (spill code added by register allocation targets the stack
        # region, which observable_outputs excludes as machine state).
        for region, count in optimised["read_counts"].items():
            assert count <= baseline["read_counts"][region] * (1 + 1e-9)
            assert count > 0.0
        for region, count in optimised["write_counts"].items():
            assert count <= baseline["write_counts"][region] * (1 + 1e-9)
            assert count > 0.0

    @given(program_seed=st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=25, deadline=None)
    def test_o3_observables_preserved(self, program_seed):
        """The profiling configuration (-O3) preserves semantics too."""
        program = build_program(random_spec(program_seed))
        baseline = observable_outputs(program)
        binary = Compiler(cache=False).compile(program, o3_setting())
        optimised = observable_outputs(binary)
        assert optimised["reads"] == baseline["reads"]
        assert optimised["writes"] == baseline["writes"]
        assert optimised["regions"] == baseline["regions"]

    @given(program_seed=st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=15, deadline=None)
    def test_generated_programs_are_deterministic(self, program_seed):
        """Same spec, same program: the fuzz base line is reproducible."""
        one = build_program(random_spec(program_seed))
        two = build_program(random_spec(program_seed))
        assert observable_outputs(one) == observable_outputs(two)
        assert one.size_bytes == two.size_bytes
        assert one.dynamic_insns == pytest.approx(two.dynamic_insns)


class _SwappingCompiler(Compiler):
    """A sabotaged compiler that returns a binary for the wrong request."""

    def __init__(self, wrong_program=None, wrong_setting=None):
        super().__init__(cache=False)
        self.wrong_program = wrong_program
        self.wrong_setting = wrong_setting

    def compile(self, program, setting):
        if self.wrong_program is not None:
            return super().compile(self.wrong_program, setting)
        return super().compile(program, self.wrong_setting)


class TestNoSilentBinarySwap:
    """Fold evaluation must reject a binary it did not ask for."""

    def test_oracle_accepts_the_right_binary(self, tiny_data):
        oracle = RuntimeOracle(
            tiny_data.training, tiny_data.programs, compiler=Compiler()
        )
        machine = tiny_data.training.machines[0]
        program = tiny_data.training.program_names[0]
        setting = o3_setting().with_values(funroll_loops=True)
        assert oracle.runtime(program, setting, machine) > 0.0

    def test_oracle_rejects_wrong_program_binary(self, tiny_data):
        wrong = tiny_data.programs[1]
        oracle = RuntimeOracle(
            tiny_data.training,
            tiny_data.programs,
            compiler=_SwappingCompiler(wrong_program=wrong),
        )
        machine = tiny_data.training.machines[0]
        program = tiny_data.training.program_names[0]
        setting = o3_setting().with_values(funroll_loops=True)
        with pytest.raises(OracleError, match="binary swap"):
            oracle.runtime(program, setting, machine)

    def test_oracle_rejects_wrong_setting_binary(self, tiny_data):
        oracle = RuntimeOracle(
            tiny_data.training,
            tiny_data.programs,
            compiler=_SwappingCompiler(wrong_setting=o3_setting()),
        )
        machine = tiny_data.training.machines[0]
        program = tiny_data.training.program_names[0]
        setting = o3_setting().with_values(funroll_loops=True)
        with pytest.raises(OracleError, match="binary swap"):
            oracle.runtime(program, setting, machine)

    def test_in_grid_lookups_never_compile_at_all(self, tiny_data):
        """Grid settings come straight from the store; a sabotaged
        compiler is never consulted, so checkpointed results cannot be
        poisoned by a bad compile path."""
        oracle = RuntimeOracle(
            tiny_data.training,
            tiny_data.programs,
            compiler=_SwappingCompiler(wrong_program=tiny_data.programs[1]),
        )
        machine = tiny_data.training.machines[2]
        program = tiny_data.training.program_names[0]
        grid_setting = tiny_data.training.settings[5]
        expected = float(tiny_data.training.runtimes[0, 5, 2])
        assert oracle.runtime(program, grid_setting, machine) == expected
        assert oracle.simulation_calls == 0
        assert oracle.store_hits == 1
