"""Tests for the ML core: features, distributions, predictor."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.flags import DEFAULT_SPACE, FlagSetting, o3_setting
from repro.core.distribution import IIDDistribution, good_settings_by_runtime
from repro.core.features import (
    FeatureNormaliser,
    feature_mask,
    feature_names,
    feature_vector,
    split_feature_vector,
)
from repro.core.predictor import OptimisationPredictor
from repro.machine.xscale import xscale
from repro.sim.counters import COUNTER_NAMES, PerfCounters


def _counters(ipc: float = 0.8, icache_miss: float = 0.01) -> PerfCounters:
    return PerfCounters(
        ipc=ipc,
        dec_acc_rate=ipc * 1.05,
        reg_acc_rate=1.5,
        bpred_acc_rate=0.1,
        icache_acc_rate=ipc * 1.05,
        icache_miss_rate=icache_miss,
        dcache_acc_rate=0.2,
        dcache_miss_rate=0.05,
        alu_usage=0.6,
        mac_usage=0.1,
        shift_usage=0.1,
    )


class TestFeatures:
    def test_names_descriptors_first(self):
        names = feature_names()
        assert names[:8] == (
            "btb_size",
            "btb_assoc",
            "i_size",
            "i_assoc",
            "i_block",
            "d_size",
            "d_assoc",
            "d_block",
        )
        assert names[8:] == COUNTER_NAMES

    def test_extended_names(self):
        names = feature_names(extended=True)
        assert "frequency" in names and "issue_width" in names
        assert len(names) == 10 + 11

    def test_vector_concatenation(self):
        vector = feature_vector(_counters(), xscale())
        assert len(vector) == 19
        descriptors, counters = split_feature_vector(vector)
        assert len(descriptors) == 8
        assert counters[0] == pytest.approx(0.8)  # ipc

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            PerfCounters(
                ipc=1.0,
                dec_acc_rate=1.0,
                reg_acc_rate=1.0,
                bpred_acc_rate=0.1,
                icache_acc_rate=1.0,
                icache_miss_rate=1.7,  # invalid
                dcache_acc_rate=0.2,
                dcache_miss_rate=0.0,
                alu_usage=0.5,
                mac_usage=0.1,
                shift_usage=0.1,
            )

    def test_normaliser_zero_mean_unit_std(self):
        matrix = np.random.default_rng(0).normal(5.0, 3.0, size=(50, 4))
        normaliser = FeatureNormaliser.fit(matrix)
        transformed = normaliser.transform(matrix)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_normaliser_constant_column_safe(self):
        matrix = np.ones((10, 2))
        normaliser = FeatureNormaliser.fit(matrix)
        assert np.all(np.isfinite(normaliser.transform(matrix)))

    def test_normaliser_rejects_empty(self):
        with pytest.raises(ValueError):
            FeatureNormaliser.fit(np.empty((0, 3)))

    def test_masks(self):
        assert feature_mask("both").sum() == 19
        assert feature_mask("descriptors").sum() == 8
        assert feature_mask("counters").sum() == 11
        with pytest.raises(ValueError):
            feature_mask("bogus")


class TestIIDDistribution:
    def test_fit_is_counting_estimator(self):
        settings_list = [
            o3_setting(),
            o3_setting(),
            o3_setting().with_values(fgcse=False),
        ]
        distribution = IIDDistribution.fit(settings_list)
        gcse_dim = DEFAULT_SPACE.names.index("fgcse")
        theta = distribution.theta[gcse_dim]
        assert theta[0] == pytest.approx(1 / 3)  # False
        assert theta[1] == pytest.approx(2 / 3)  # True

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            IIDDistribution.fit([])

    def test_mode_majority(self):
        settings_list = [o3_setting()] * 3 + [
            o3_setting().with_values(funroll_loops=True)
        ]
        assert IIDDistribution.fit(settings_list).mode() == o3_setting()

    def test_mode_of_single_setting_is_that_setting(self):
        setting = DEFAULT_SPACE.sample_many(1, seed=9)[0]
        assert IIDDistribution.fit([setting]).mode() == setting

    def test_log_prob_factorises(self):
        settings_list = DEFAULT_SPACE.sample_many(40, seed=3)
        distribution = IIDDistribution.fit(settings_list, smoothing=0.5)
        setting = settings_list[0]
        manual = sum(
            math.log(distribution.theta[dim][index])
            for dim, index in enumerate(setting.as_indices())
        )
        assert distribution.log_prob(setting) == pytest.approx(manual)

    def test_log_prob_zero_probability(self):
        distribution = IIDDistribution.fit([o3_setting()])
        other = o3_setting().with_values(funroll_loops=True)
        assert distribution.log_prob(other) == -math.inf

    def test_mix_convex_combination(self):
        a = IIDDistribution.fit([o3_setting()])
        b = IIDDistribution.fit([o3_setting().with_values(fgcse=False)])
        mixed = IIDDistribution.mix([a, b], [0.75, 0.25])
        gcse_dim = DEFAULT_SPACE.names.index("fgcse")
        assert mixed.theta[gcse_dim][1] == pytest.approx(0.75)

    def test_mix_normalises_weights(self):
        a = IIDDistribution.fit([o3_setting()])
        mixed = IIDDistribution.mix([a, a], [2.0, 6.0])
        for theta in mixed.theta:
            assert theta.sum() == pytest.approx(1.0)

    def test_mix_rejects_mismatched(self):
        a = IIDDistribution.fit([o3_setting()])
        with pytest.raises(ValueError):
            IIDDistribution.mix([a], [0.5, 0.5])

    def test_sample_respects_support(self):
        distribution = IIDDistribution.fit([o3_setting()])
        rng = random.Random(0)
        assert distribution.sample(rng) == o3_setting()

    def test_marginal_lookup(self):
        distribution = IIDDistribution.fit([o3_setting()])
        marginal = distribution.marginal("funroll_loops")
        assert marginal[0] == pytest.approx(1.0)

    def test_cross_entropy_minimised_by_own_empirical(self):
        data = DEFAULT_SPACE.sample_many(30, seed=5)
        fitted = IIDDistribution.fit(data, smoothing=0.1)
        other = IIDDistribution.fit(DEFAULT_SPACE.sample_many(30, seed=6), smoothing=0.1)
        assert fitted.cross_entropy(data) <= other.cross_entropy(data) + 1e-9

    def test_kl_nonnegative(self):
        data = DEFAULT_SPACE.sample_many(30, seed=7)
        fitted = IIDDistribution.fit(data, smoothing=0.1)
        assert fitted.kl_from_empirical(data) >= -1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_theta_always_normalised(self, seed):
        data = DEFAULT_SPACE.sample_many(10, seed=seed)
        distribution = IIDDistribution.fit(data)
        for theta in distribution.theta:
            assert theta.sum() == pytest.approx(1.0)
            assert np.all(theta >= 0.0)


class TestGoodSettings:
    def test_top_quantile_by_runtime(self):
        settings_list = DEFAULT_SPACE.sample_many(100, seed=1)
        runtimes = np.linspace(1.0, 2.0, 100)
        good = good_settings_by_runtime(settings_list, runtimes, quantile=0.05)
        assert good == settings_list[:5]

    def test_at_least_one(self):
        settings_list = DEFAULT_SPACE.sample_many(3, seed=1)
        good = good_settings_by_runtime(settings_list, np.array([3.0, 1.0, 2.0]), 0.05)
        assert good == [settings_list[1]]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            good_settings_by_runtime([o3_setting()], np.array([1.0, 2.0]))

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            good_settings_by_runtime([o3_setting()], np.array([1.0]), quantile=0.0)

    @pytest.mark.parametrize(
        ("size", "expected"),
        [(10, 1), (30, 2), (50, 3), (70, 4), (90, 5), (110, 6)],
    )
    def test_half_up_rounding_at_boundaries(self, size, expected):
        """n * 0.05 lands exactly on .5 for these sizes: the cut must round
        half up, monotonically in n.  Banker's rounding kept 2 of 50 but 4
        of 70 — this is the regression test for that bug."""
        settings_list = DEFAULT_SPACE.sample_many(size, seed=2)
        runtimes = np.linspace(1.0, 2.0, size)
        good = good_settings_by_runtime(settings_list, runtimes, quantile=0.05)
        assert good == settings_list[:expected]

    def test_paper_grid_cut_is_unchanged(self):
        """400 × 0.05 = 20 exactly — no .5 tie, so the paper-default grid
        (and every golden fingerprint fitted from it) is unaffected by the
        half-up tie rule."""
        settings_list = DEFAULT_SPACE.sample_many(400, seed=3)
        runtimes = np.linspace(1.0, 2.0, 400)
        good = good_settings_by_runtime(settings_list, runtimes, quantile=0.05)
        assert len(good) == 20
        assert good == settings_list[:20]

    def test_preset_scales_unaffected_by_tie_rule(self):
        """None of the preset grids lands on a .5 boundary at the default
        quantile, so the rounding fix cannot move any cached dataset or
        golden fingerprint."""
        from repro.core.predictor import DEFAULT_QUANTILE
        from repro.experiments.config import PRESETS

        for scale in PRESETS.values():
            n = scale.n_settings
            half_up = max(1, math.floor(n * DEFAULT_QUANTILE + 0.5))
            bankers = max(1, int(round(n * DEFAULT_QUANTILE)))
            assert half_up == bankers, scale.name


class TestPredictor:
    def test_unfitted_predict_raises(self):
        predictor = OptimisationPredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(_counters(), xscale())

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_unfitted_neighbours_raises_cleanly(self, vectorize):
        """Regression: neighbours() used to skip the is_fitted guard and
        die with AttributeError on the missing normaliser."""
        predictor = OptimisationPredictor(vectorize=vectorize)
        with pytest.raises(RuntimeError, match="not fitted"):
            predictor.neighbours(_counters(), xscale())

    @pytest.mark.parametrize("vectorize", [True, False])
    def test_neighbours_exhausted_candidates_raise(self, tiny_data, vectorize):
        """Regression: neighbours() used to return [] silently where
        predict_distribution raises when exclusions empty the candidates."""
        training = tiny_data.training
        predictor = OptimisationPredictor(
            extended=training.extended, vectorize=vectorize
        ).fit(training)
        only = training.program_names[0]
        predictor._pairs = [
            pair for pair in predictor._pairs if pair.program == only
        ]
        predictor._refresh_tensors()
        counters = PerfCounters(*training.counters[0, 0, :])
        with pytest.raises(RuntimeError, match="no training pairs"):
            predictor.neighbours(
                counters, tiny_data.machines[0], exclude_program=only
            )

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            OptimisationPredictor(k=0)

    def test_fit_predict_roundtrip(self, tiny_data):
        predictor = OptimisationPredictor().fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        setting = predictor.predict(counters, tiny_data.machines[0])
        assert isinstance(setting, FlagSetting)

    def test_prediction_deterministic(self, tiny_data):
        predictor = OptimisationPredictor().fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[1, 2, :])
        machine = tiny_data.machines[2]
        assert predictor.predict(counters, machine) == predictor.predict(
            counters, machine
        )

    def test_exclusions_remove_pairs(self, tiny_data):
        predictor = OptimisationPredictor().fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        program = tiny_data.training.program_names[0]
        machine = tiny_data.machines[0]
        neighbours = predictor.neighbours(
            counters, machine, exclude_program=program, exclude_machine=machine
        )
        assert all(name != program for name, _, _ in neighbours)
        assert all(mach != machine for _, mach, _ in neighbours)

    def test_k_limits_neighbours(self, tiny_data):
        predictor = OptimisationPredictor(k=3).fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[0, 0, :])
        assert len(predictor.neighbours(counters, tiny_data.machines[0])) == 3

    def test_k1_returns_nearest_pair_mode(self, tiny_data):
        predictor = OptimisationPredictor(k=1).fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[2, 3, :])
        machine = tiny_data.machines[3]
        (name, mach, _), = predictor.neighbours(counters, machine)
        p = tiny_data.training.program_index(name)
        m = tiny_data.training.machine_index(mach)
        expected = tiny_data.training.pair_distribution(p, m).mode()
        assert predictor.predict(counters, machine) == expected

    def test_self_query_finds_itself_without_exclusion(self, tiny_data):
        predictor = OptimisationPredictor(k=1).fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[1, 1, :])
        machine = tiny_data.machines[1]
        (name, mach, distance), = predictor.neighbours(counters, machine)
        assert name == tiny_data.training.program_names[1]
        assert mach == machine
        assert distance == pytest.approx(0.0, abs=1e-9)

    def test_feature_mode_counters_only(self, tiny_data):
        predictor = OptimisationPredictor(feature_mode="counters").fit(
            tiny_data.training
        )
        counters = PerfCounters(*tiny_data.training.counters[0, 1, :])
        setting = predictor.predict(counters, tiny_data.machines[1])
        assert isinstance(setting, FlagSetting)

    def test_beta_weighting_changes_mixture(self, tiny_data):
        sharp = OptimisationPredictor(beta=50.0).fit(tiny_data.training)
        counters = PerfCounters(*tiny_data.training.counters[2, 2, :])
        machine = tiny_data.machines[2]
        distribution = sharp.predict_distribution(
            counters, machine, exclude_program=None, exclude_machine=None
        )
        # With huge beta the mixture collapses onto the self pair.
        p = tiny_data.training.program_index(tiny_data.training.program_names[2])
        m = tiny_data.training.machine_index(machine)
        expected = tiny_data.training.pair_distribution(p, m)
        for dim in range(len(DEFAULT_SPACE)):
            assert np.allclose(
                distribution.theta[dim], expected.theta[dim], atol=0.05
            )
