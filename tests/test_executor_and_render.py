"""Tests for the executor facade and the experiment render surfaces."""

import pytest

from repro.compiler import Compiler, o3_setting
from repro.experiments import figure3, table2
from repro.experiments.ablations import AblationResult, AblationRow
from repro.machine import xscale
from repro.programs import mibench_program
from repro.sim import simulate


class TestExecutorFacade:
    def test_program_path_uses_o3_by_default(self, compiler):
        program = mibench_program("sha")
        via_facade = simulate(program, xscale())
        direct = simulate(compiler.compile(program, o3_setting()), xscale())
        assert via_facade.cycles == pytest.approx(direct.cycles)

    def test_custom_compiler_respected(self):
        program = mibench_program("sha")
        compiler = Compiler()
        simulate(program, xscale(), compiler=compiler)
        assert compiler.cache_info()["entries"] == 1

    def test_setting_override(self, compiler):
        program = mibench_program("search")
        default = simulate(program, xscale(), compiler=compiler)
        unrolled = simulate(
            program,
            xscale(),
            setting=o3_setting().with_values(funroll_loops=True),
            compiler=compiler,
        )
        assert unrolled.cycles < default.cycles


class TestRenderSurfaces:
    def test_table2_render_lists_all_parameters(self):
        text = table2().render()
        for name in (
            "il1_size",
            "il1_assoc",
            "il1_block",
            "dl1_size",
            "btb_entries",
            "btb_assoc",
        ):
            assert name in text

    def test_figure3_render_mentions_paper_values(self):
        text = figure3().render()
        assert "6.42e8" in text
        assert "39" in text

    def test_ablation_render_alignment(self):
        result = AblationResult(
            title="t",
            rows=[
                AblationRow("a", 1.1, 0.5, 0.9),
                AblationRow("b", 1.2, 0.6, 0.8),
            ],
        )
        text = result.render()
        assert "t" in text
        assert "50.00%" in text
        assert "1.200" in text

    def test_hinton_render_shades(self, tiny_data):
        from repro.experiments import figure8

        result = figure8(tiny_data)
        text = result.render()
        # Shade characters only come from the defined ramp.
        art_lines = text.splitlines()[1 : 1 + len(result.rows)]
        for line in art_lines:
            cells = line[len(line) - len(result.columns) :]
            assert set(cells) <= set(result.SHADES)

    def test_figure7_render_contains_regions(self, tiny_data):
        from repro.experiments import figure7

        text = figure7(tiny_data).render()
        assert "low-headroom" in text
        assert "high-headroom" in text

    def test_figure10_render_compares_spaces(self, tiny_data):
        # Construct directly to avoid building an extended dataset here.
        from repro.experiments import figure6
        from repro.experiments.figures import Figure10Result

        base = figure6(tiny_data)
        result = Figure10Result(base=base, extended=base)
        text = result.render()
        assert "base space" in text
        assert "extended space" in text
