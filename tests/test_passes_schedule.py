"""Tests for instruction scheduling and the register-pressure model."""

import pytest

from repro.compiler.flags import o3_setting
from repro.compiler.ir import BasicBlock, Instruction, Opcode
from repro.compiler.passes.base import PassStats
from repro.compiler.passes.schedule import (
    BASELINE_LIVE,
    ScheduleInsnsPass,
    block_pressure,
    list_schedule,
    merge_fallthrough_chains,
)
from tests.conftest import simple_loop_program


def _stall_cycles(block: BasicBlock, load_latency: int = 3) -> float:
    """In-order single-issue stalls implied by the block's final order."""
    latency = {"alu": 1, "shift": 1, "mac": 3, "load": load_latency, "carried": 4}
    total = 0.0
    for index, insn in enumerate(block.instructions):
        for distance, kind in insn.deps:
            total += max(0.0, latency[kind] - distance)
    return total


def _two_chain_block() -> BasicBlock:
    """Two independent load→use chains, naively ordered (maximal stalls)."""
    return BasicBlock(
        "b",
        [
            Instruction(opcode=Opcode.LOAD, expr="l0", region="data", stride=4),
            Instruction(opcode=Opcode.ADD, expr="a0", deps=((1, "load"),)),
            Instruction(opcode=Opcode.LOAD, expr="l1", region="data", stride=4),
            Instruction(opcode=Opcode.ADD, expr="a1", deps=((1, "load"),)),
            Instruction(opcode=Opcode.XOR, expr="x0"),
            Instruction(opcode=Opcode.XOR, expr="x1"),
        ],
        exec_count=10.0,
    )


class TestListSchedule:
    def test_reduces_stalls(self):
        block = _two_chain_block()
        before = _stall_cycles(block)
        moved = list_schedule(block, allow_speculation=True)
        assert moved
        assert _stall_cycles(block) < before

    def test_preserves_instruction_multiset(self):
        block = _two_chain_block()
        before = sorted(insn.expr for insn in block.instructions)
        list_schedule(block, allow_speculation=True)
        assert sorted(insn.expr for insn in block.instructions) == before

    def test_terminator_stays_last(self):
        block = _two_chain_block()
        block.instructions.append(Instruction(opcode=Opcode.BR))
        block.successors = ["b"]
        list_schedule(block, allow_speculation=True)
        assert block.instructions[-1].opcode is Opcode.BR

    def test_deterministic(self):
        one = _two_chain_block()
        two = _two_chain_block()
        list_schedule(one, allow_speculation=True)
        list_schedule(two, allow_speculation=True)
        assert [insn.expr for insn in one.instructions] == [
            insn.expr for insn in two.instructions
        ]

    def test_dependences_respected(self):
        block = _two_chain_block()
        list_schedule(block, allow_speculation=True)
        position = {insn.expr: index for index, insn in enumerate(block.instructions)}
        # Consumers stay after their producers.
        assert position["a0"] > position["l0"]
        assert position["a1"] > position["l1"]

    def test_speculation_gates_load_store_reordering(self):
        def make_block():
            return BasicBlock(
                "b",
                [
                    Instruction(opcode=Opcode.STORE, expr="s", region="out", stride=4),
                    Instruction(opcode=Opcode.LOAD, expr="l", region="in", stride=4),
                    Instruction(opcode=Opcode.ADD, expr="a", deps=((1, "load"),)),
                    Instruction(opcode=Opcode.XOR, expr="x"),
                ],
                exec_count=1.0,
            )

        speculative = make_block()
        list_schedule(speculative, allow_speculation=True)
        spec_order = [insn.expr for insn in speculative.instructions]

        conservative = make_block()
        list_schedule(conservative, allow_speculation=False)
        cons_order = [insn.expr for insn in conservative.instructions]

        # Without speculation the load may not cross the store.
        assert cons_order.index("l") > cons_order.index("s")
        # With speculation it may (different regions).
        assert spec_order.index("l") < spec_order.index("s") or spec_order != cons_order

    def test_same_region_store_load_never_reordered(self):
        block = BasicBlock(
            "b",
            [
                Instruction(opcode=Opcode.STORE, expr="s", region="m", stride=4),
                Instruction(opcode=Opcode.LOAD, expr="l", region="m", stride=4),
                Instruction(opcode=Opcode.ADD, expr="a"),
            ],
        )
        list_schedule(block, allow_speculation=True)
        order = [insn.expr for insn in block.instructions]
        assert order.index("l") > order.index("s")

    def test_tiny_blocks_untouched(self):
        block = BasicBlock(
            "b",
            [Instruction(opcode=Opcode.ADD, expr="a"), Instruction(opcode=Opcode.ADD, expr="b")],
        )
        assert not list_schedule(block, allow_speculation=True)


class TestMergeFallthrough:
    def test_merges_pure_chain(self):
        program = simple_loop_program(body_insns=6)
        function = program.functions["main"]
        stats = PassStats()
        merge_fallthrough_chains(function, stats)
        # hdr -> body merge (same count, single pred, no terminator).
        assert stats["schedule.blocks_merged"] >= 1
        assert "body" not in function.blocks

    def test_loop_membership_updated(self):
        program = simple_loop_program(body_insns=6)
        function = program.functions["main"]
        merge_fallthrough_chains(function, PassStats())
        loop = function.loops[0]
        assert "body" not in loop.blocks
        assert set(loop.blocks) <= set(function.blocks)

    def test_merged_block_keeps_terminator_and_successors(self):
        # The latch (which ends in BR) may be absorbed into its fall-through
        # predecessor; the merged block must then end with that BR and
        # inherit the latch's successors and taken probability.
        program = simple_loop_program()
        function = program.functions["main"]
        merge_fallthrough_chains(function, PassStats())
        merged = function.blocks["hdr"]
        assert merged.terminator is not None
        assert merged.terminator.opcode.value == "br"
        assert "hdr" in merged.successors  # the back edge survives
        assert merged.taken_prob > 0.9

    def test_terminated_blocks_do_not_absorb_followers(self):
        program = simple_loop_program()
        function = program.functions["main"]
        merge_fallthrough_chains(function, PassStats())
        # 'exit' follows the latch BR; it must not be merged upwards.
        assert "exit" in function.blocks

    def test_different_frequency_not_merged(self):
        program = simple_loop_program()
        function = program.functions["main"]
        function.blocks["body"].exec_count *= 2  # now differs from hdr
        merge_fallthrough_chains(function, PassStats())
        assert "body" in function.blocks

    def test_region_cap_respected(self):
        program = simple_loop_program(body_insns=6)
        function = program.functions["main"]
        merge_fallthrough_chains(function, PassStats(), region_cap=4)
        assert "body" in function.blocks  # merge would exceed the cap


class TestBlockPressure:
    def test_baseline_for_independent_code(self):
        block = BasicBlock(
            "b", [Instruction(opcode=Opcode.ADD, expr=f"i{i}") for i in range(5)]
        )
        assert block_pressure(block) == BASELINE_LIVE

    def test_overlapping_ranges_raise_pressure(self):
        # Five values produced up front, all consumed at the end.
        instructions = [
            Instruction(opcode=Opcode.ADD, expr=f"v{i}") for i in range(5)
        ]
        instructions.append(
            Instruction(
                opcode=Opcode.ADD,
                expr="sum",
                deps=tuple((distance, "alu") for distance in range(1, 6)),
            )
        )
        block = BasicBlock("b", instructions)
        assert block_pressure(block) == BASELINE_LIVE + 5

    def test_scheduling_can_raise_pressure(self):
        block = _two_chain_block()
        before = block_pressure(block)
        list_schedule(block, allow_speculation=True)
        assert block_pressure(block) >= before


class TestScheduleInsnsPass:
    def test_gated_by_flag(self):
        program = simple_loop_program()
        body = program.functions["main"].blocks["body"]
        body.instructions[3].deps = ((1, "load"),)
        before = [insn.expr for insn in body.instructions]
        ScheduleInsnsPass().apply(
            program, o3_setting().with_values(fschedule_insns=False), PassStats()
        )
        assert [insn.expr for insn in body.instructions] == before

    def test_runs_at_o3(self):
        program = simple_loop_program(body_insns=10)
        # Inject a stall-heavy pattern so scheduling has something to do.
        body = program.functions["main"].blocks["body"]
        body.instructions.insert(
            0, Instruction(opcode=Opcode.LOAD, expr="ld0", region="data", stride=4)
        )
        body.instructions.insert(
            1, Instruction(opcode=Opcode.ADD, expr="use0", deps=((1, "load"),))
        )
        stats = PassStats()
        ScheduleInsnsPass().apply(program, o3_setting(), stats)
        assert stats["schedule.ran"] == 1
        assert stats["schedule.blocks_scheduled"] >= 1

    def test_interblock_disabled_keeps_blocks(self):
        program = simple_loop_program(body_insns=6)
        setting = o3_setting().with_values(fno_sched_interblock=True)
        ScheduleInsnsPass().apply(program, setting, PassStats())
        assert "body" in program.functions["main"].blocks

    def test_interblock_enabled_merges(self):
        program = simple_loop_program(body_insns=6)
        ScheduleInsnsPass().apply(program, o3_setting(), PassStats())
        assert "body" not in program.functions["main"].blocks
