"""Leakage guard for leave-one-out cross-validation.

§5.1.1's claim is that the model never consults training data from the
held-out program *or* the held-out machine.  Exclusion happens at query
time through the predictor's single candidate gate
(:meth:`OptimisationPredictor._candidate_indices`) — the scalar and
vectorised prediction paths both select through it, exactly once per
query — so instrumenting that gate observes every training row any
prediction can possibly touch.  These tests record every consulted row
across a full leave-one-out sweep and a full pipeline fold and assert
the held-out rows never appear.
"""

from __future__ import annotations

from repro.core.crossval import leave_one_out
from repro.core.predictor import OptimisationPredictor
from repro.evalrun.foldstore import FoldKey
from repro.evalrun.oracle import RuntimeOracle
from repro.evalrun.pipeline import compute_fold
from repro.evalrun.variants import BASE_VARIANT


class RecordingPredictor(OptimisationPredictor):
    """Records every training row each prediction was allowed to consult."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: one entry per prediction: (exclusions, consulted rows)
        self.queries: list[tuple[str | None, object, list[tuple[str, object]]]] = []

    def _candidate_indices(self, exclude_program, exclude_machine):
        indices = super()._candidate_indices(exclude_program, exclude_machine)
        self.queries.append(
            (
                exclude_program,
                exclude_machine,
                [
                    (self._pairs[int(i)].program, self._pairs[int(i)].machine)
                    for i in indices
                ],
            )
        )
        return indices


def _assert_no_leakage(queries):
    assert queries, "the predictor was never consulted"
    for exclude_program, exclude_machine, consulted in queries:
        assert exclude_program is not None, "fold forgot to hold out a program"
        assert exclude_machine is not None, "fold forgot to hold out a machine"
        assert consulted, "exclusions left no training data at all"
        for program, machine in consulted:
            assert program != exclude_program, (
                f"leakage: training row of held-out program {program!r} "
                "was consulted"
            )
            assert machine != exclude_machine, (
                "leakage: training row of the held-out machine was consulted"
            )


class TestLeaveOneOutLeakage:
    def test_no_heldout_row_ever_consulted(self, tiny_data):
        predictor = RecordingPredictor(extended=tiny_data.scale.extended)
        leave_one_out(
            tiny_data.training,
            tiny_data.programs,
            compiler=tiny_data.compiler,
            predictor=predictor,
        )
        P = len(tiny_data.training.program_names)
        M = len(tiny_data.training.machines)
        assert len(predictor.queries) == P * M
        _assert_no_leakage(predictor.queries)

    def test_every_pair_is_its_own_fold(self, tiny_data):
        """Each (program, machine) pair is predicted with exactly itself
        held out — the exclusions sweep the full grid."""
        predictor = RecordingPredictor(extended=tiny_data.scale.extended)
        leave_one_out(
            tiny_data.training,
            tiny_data.programs,
            compiler=tiny_data.compiler,
            predictor=predictor,
        )
        seen = {
            (exclude_program, exclude_machine)
            for exclude_program, exclude_machine, _ in predictor.queries
        }
        expected = {
            (name, machine)
            for name in tiny_data.training.program_names
            for machine in tiny_data.training.machines
        }
        assert seen == expected

    def test_pipeline_folds_hold_out_program_and_machine(self, tiny_data):
        """The checkpointed pipeline path applies the same exclusions as
        the direct leave_one_out sweep."""
        training = tiny_data.training
        oracle = RuntimeOracle(training, tiny_data.programs)
        predictor = RecordingPredictor(extended=training.extended).fit(training)
        program = training.program_names[0]
        record = compute_fold(training, BASE_VARIANT, program, oracle, predictor)
        assert record.key == FoldKey("base", program)
        assert len(predictor.queries) == len(training.machines)
        assert all(
            exclude_program == program
            for exclude_program, _, _ in predictor.queries
        )
        _assert_no_leakage(predictor.queries)
