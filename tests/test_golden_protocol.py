"""Golden pins for the TINY-scale paper-protocol report.

Every figure and table of the protocol report is fingerprinted (a hash
of its rendered text) and pinned to the committed fixture
``tests/golden/tiny_protocol_golden.json``, alongside the protocol and
fold-store fingerprints.  Any refactor of the pipeline, oracle, fold
store, predictor variants, or renderers that shifts a single paper
number — or a single rendered character — fails here, even when every
behavioural test still passes.

If a change is *intentional*, regenerate the fixture and commit the diff::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.api import Session

    report = Session("tiny", use_disk_cache=False).run_protocol().report
    golden = json.load(open("tests/golden/tiny_protocol_golden.json"))
    golden.update(
        protocol_fingerprint=report.payload["fingerprints"]["protocol"],
        fold_fingerprint=report.payload["fingerprints"]["folds"],
        report_fingerprint=report.fingerprint,
        artifacts=report.artifact_fingerprints,
    )
    json.dump(golden, open("tests/golden/tiny_protocol_golden.json", "w"), indent=2)
    EOF
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden" / "tiny_protocol_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenProtocol:
    def test_every_artifact_fingerprint_pinned(self, tiny_protocol, golden):
        report = tiny_protocol.report
        assert set(report.artifact_fingerprints) == set(golden["artifacts"])
        mismatched = {
            name: (fingerprint, golden["artifacts"][name])
            for name, fingerprint in report.artifact_fingerprints.items()
            if fingerprint != golden["artifacts"][name]
        }
        assert not mismatched, (
            f"paper artifacts drifted from the golden pins: {mismatched} — "
            "if intentional, regenerate the fixture (see module docstring)"
        )

    def test_protocol_and_fold_fingerprints_pinned(self, tiny_protocol, golden):
        payload = tiny_protocol.report.payload
        assert payload["fingerprints"]["protocol"] == golden["protocol_fingerprint"]
        assert payload["fingerprints"]["folds"] == golden["fold_fingerprint"]

    def test_whole_report_fingerprint_pinned(self, tiny_protocol, golden):
        assert tiny_protocol.report.fingerprint == golden["report_fingerprint"]

    def test_headline_consistent_with_dataset_golden(self, tiny_protocol):
        """The protocol's headline must agree with the dataset-level
        golden fixture: two pins, one truth."""
        dataset_golden = json.loads(
            (Path(__file__).parent / "golden" / "tiny_golden.json").read_text()
        )
        headline = tiny_protocol.report.payload["headline"]
        assert headline["mean_best_speedup"] == pytest.approx(
            dataset_golden["headline_mean_best_speedup"], rel=1e-12
        )
        assert headline["mean_model_speedup"] == pytest.approx(
            dataset_golden["headline_mean_model_speedup"], rel=1e-12
        )

    def test_golden_fixture_is_sane(self, golden):
        assert golden["scale"] == "tiny"
        assert len(golden["artifacts"]) >= 17
        for name, fingerprint in golden["artifacts"].items():
            assert len(fingerprint) == 16, name
