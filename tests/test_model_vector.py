"""The ranking kernel's contract: exact equality with the scalar model.

:mod:`repro.core.vector` must reproduce the scalar
:class:`~repro.core.predictor.OptimisationPredictor` float for float —
every mixture theta, every ranked probability, every neighbour distance —
because the service serialises rankings with :func:`canonical_json`, where
bit-identity and byte-identity are the same thing.  The hypothesis suites
assert that over random queries × machines × exclusions × K, the
deterministic tests cover the batch API, the registry's promote-time
sidecar, the service path, and the edge cases (ties in the top-K, batches
that exhaust the candidates); the kernel-poison test proves
``vectorize=False`` never touches the batch path.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ModelRegistry, Session
from repro.api.facets import ranked_prediction, ranked_prediction_many
from repro.core import vector as model_vector
from repro.core.predictor import OptimisationPredictor
from repro.machine.params import BASE_GRID, EXTENDED_GRID, MicroArch
from repro.service.service import PredictionService, canonical_json
from repro.sim.counters import PerfCounters

machines_strategy = st.builds(
    MicroArch,
    il1_size=st.sampled_from(BASE_GRID["il1_size"]),
    il1_assoc=st.sampled_from(BASE_GRID["il1_assoc"]),
    il1_block=st.sampled_from(BASE_GRID["il1_block"]),
    dl1_size=st.sampled_from(BASE_GRID["dl1_size"]),
    dl1_assoc=st.sampled_from(BASE_GRID["dl1_assoc"]),
    dl1_block=st.sampled_from(BASE_GRID["dl1_block"]),
    btb_entries=st.sampled_from(BASE_GRID["btb_entries"]),
    btb_assoc=st.sampled_from(BASE_GRID["btb_assoc"]),
    frequency_mhz=st.sampled_from(EXTENDED_GRID["frequency_mhz"]),
    issue_width=st.sampled_from(EXTENDED_GRID["issue_width"]),
)


def clone_with(base: OptimisationPredictor, k: int, vectorize: bool):
    """A fitted predictor sharing ``base``'s pairs with different knobs."""
    clone = OptimisationPredictor(
        space=base.space,
        k=k,
        beta=base.beta,
        quantile=base.quantile,
        extended=base.extended,
        feature_mode=base.feature_mode,
        vectorize=vectorize,
    )
    clone._pairs = base._pairs
    clone._normaliser = base._normaliser
    clone._mask = base._mask
    clone._refresh_tensors()
    return clone


def assert_distribution_exact(reference, candidate) -> None:
    assert len(reference.theta) == len(candidate.theta)
    for dim, (a, b) in enumerate(zip(reference.theta, candidate.theta)):
        assert np.array_equal(a, b), f"theta drifted in dimension {dim}"


@pytest.fixture(scope="module")
def fitted(tiny_data):
    training = tiny_data.training
    scalar = OptimisationPredictor(
        extended=training.extended, vectorize=False
    ).fit(training)
    vector = OptimisationPredictor(
        extended=training.extended, vectorize=True
    ).fit(training)
    return {"training": training, "scalar": scalar, "vector": vector}


class TestStableTopK:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=45),
        levels=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_stable_argsort(self, seed, rows, cols, k, levels):
        """Heavy ties (few distinct values) are exactly where argpartition
        alone would diverge from a stable sort — the repair must fix it."""
        rng = np.random.default_rng(seed)
        distances = rng.choice(
            np.linspace(0.0, 1.0, levels), size=(rows, cols)
        )
        k = min(k, cols)
        expected = np.argsort(distances, axis=1, kind="stable")[:, :k]
        assert np.array_equal(
            model_vector.stable_topk(distances, k), expected
        )

    def test_handles_inf_padding(self):
        distances = np.array([[np.inf, 2.0, 2.0, 1.0, np.inf, 2.0]])
        assert model_vector.stable_topk(distances, 3).tolist() == [[3, 1, 2]]


class TestScalarVectorEquivalence:
    @given(
        p=st.integers(min_value=0, max_value=5),
        m=st.integers(min_value=0, max_value=5),
        factor=st.floats(
            min_value=0.25, max_value=4.0, allow_nan=False, width=64
        ),
        machine=machines_strategy,
        use_training_machine=st.booleans(),
        exclusion=st.sampled_from(["none", "program", "machine", "both"]),
        k=st.sampled_from([1, 2, 7, 13, 10_000]),
    )
    @settings(max_examples=60, deadline=None)
    def test_predict_distribution_rank_and_neighbours_exact(
        self, fitted, p, m, factor, machine, use_training_machine,
        exclusion, k,
    ):
        training = fitted["training"]
        p %= len(training.program_names)
        m %= len(training.machines)
        name = training.program_names[p]
        query_machine = (
            training.machines[m] if use_training_machine else machine
        )
        # Perturb the profile but keep the [0, 1]-constrained rates valid.
        counters = PerfCounters(
            *np.minimum(training.counters[p, m, :] * factor, 1.0)
        )
        exclude_program = name if exclusion in ("program", "both") else None
        exclude_machine = (
            training.machines[m] if exclusion in ("machine", "both") else None
        )
        scalar = clone_with(fitted["scalar"], k, vectorize=False)
        vector = clone_with(fitted["scalar"], k, vectorize=True)

        reference = scalar.predict_distribution(
            counters, query_machine, exclude_program, exclude_machine
        )
        candidate = vector.predict_distribution(
            counters, query_machine, exclude_program, exclude_machine
        )
        assert_distribution_exact(reference, candidate)
        assert reference.mode() == candidate.mode()
        assert reference.top_settings(5) == candidate.top_settings(5)
        assert scalar.neighbours(
            counters, query_machine, exclude_program, exclude_machine
        ) == vector.neighbours(
            counters, query_machine, exclude_program, exclude_machine
        )

    def test_unseen_exclusion_keys_match_nothing(self, fitted):
        """Excluding a program/machine the model never trained on must be
        a no-op on both paths (the id-mask maps unknowns to -1)."""
        training = fitted["training"]
        counters = PerfCounters(*training.counters[0, 0, :])
        unknown_machine = next(
            candidate
            for size in BASE_GRID["il1_size"]
            for assoc in BASE_GRID["il1_assoc"]
            if (
                candidate := dataclasses.replace(
                    training.machines[0], il1_size=size, il1_assoc=assoc
                )
            )
            not in training.machines
        )
        for predictor in (fitted["scalar"], fitted["vector"]):
            baseline = predictor.predict_distribution(
                counters, training.machines[0]
            )
            excluded = predictor.predict_distribution(
                counters,
                training.machines[0],
                exclude_program="no-such-program",
                exclude_machine=unknown_machine,
            )
            assert_distribution_exact(baseline, excluded)


class TestBatchedMany:
    def _grid_queries(self, training):
        queries = []
        for p, name in enumerate(training.program_names):
            for m, machine in enumerate(training.machines):
                queries.append(
                    (
                        PerfCounters(*training.counters[p, m, :]),
                        machine,
                        name,
                        machine,
                    )
                )
        return queries

    def test_batch_equals_scalar_singles(self, fitted):
        training = fitted["training"]
        queries = self._grid_queries(training)
        batch = fitted["vector"].predict_distribution_many(
            [q[0] for q in queries],
            [q[1] for q in queries],
            exclude_programs=[q[2] for q in queries],
            exclude_machines=[q[3] for q in queries],
        )
        for query, candidate in zip(queries, batch):
            reference = fitted["scalar"].predict_distribution(*query)
            assert_distribution_exact(reference, candidate)

    def test_predict_many_and_rank_many_match(self, fitted):
        training = fitted["training"]
        queries = self._grid_queries(training)[:8]
        counters = [q[0] for q in queries]
        machines = [q[1] for q in queries]
        for predictor in (fitted["vector"], fitted["scalar"]):
            modes = predictor.predict_many(counters, machines)
            ranks = predictor.rank_many(counters, machines, top=3)
            for i, query in enumerate(queries):
                reference = fitted["scalar"].predict_distribution(
                    query[0], query[1]
                )
                assert modes[i] == reference.mode()
                assert ranks[i] == reference.top_settings(3)

    def test_empty_batch_and_length_mismatch(self, fitted):
        assert fitted["vector"].predict_distribution_many([], []) == []
        training = fitted["training"]
        counters = PerfCounters(*training.counters[0, 0, :])
        with pytest.raises(ValueError, match="equal length"):
            fitted["vector"].predict_distribution_many(
                [counters], training.machines[:2]
            )
        with pytest.raises(ValueError, match="exclude_programs"):
            fitted["vector"].predict_distribution_many(
                [counters], [training.machines[0]], exclude_programs=["a", "b"]
            )

    def test_unfitted_many_raises(self):
        model = OptimisationPredictor()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict_distribution_many([], [])

    def test_exhausted_candidates_raise_in_batch(self, fitted):
        """Mixed batches surface the scalar path's RuntimeError when any
        query's exclusions wipe out every training pair."""
        training = fitted["training"]
        only = training.program_names[0]
        base = fitted["scalar"]
        for vectorize in (False, True):
            narrowed = clone_with(base, base.k, vectorize)
            narrowed._pairs = [
                pair for pair in base._pairs if pair.program == only
            ]
            narrowed._refresh_tensors()
            counters = PerfCounters(*training.counters[0, 0, :])
            with pytest.raises(RuntimeError, match="no training pairs"):
                narrowed.predict_distribution_many(
                    [counters, counters],
                    [training.machines[0]] * 2,
                    exclude_programs=[None, only],
                )

    def test_ranked_prediction_many_payloads_are_byte_identical(self, fitted):
        training = fitted["training"]
        queries = [
            {
                "counters": PerfCounters(*training.counters[p, m, :]),
                "machine": training.machines[m],
                "top": 1 + (p + m) % 4,
                "program": training.program_names[p],
            }
            for p in range(3)
            for m in range(3)
        ]
        batch = ranked_prediction_many(fitted["vector"], queries)
        for query, prediction in zip(queries, batch):
            single = ranked_prediction(
                fitted["scalar"],
                query["counters"],
                query["machine"],
                query["top"],
                program=query["program"],
            )
            assert canonical_json(prediction.payload()) == canonical_json(
                single.payload()
            )


class TestRegistrySidecar:
    @pytest.fixture()
    def registered(self, tmp_path, fitted):
        registry = ModelRegistry(tmp_path / "registry")
        entry = registry.register(
            fitted["scalar"], fingerprint="f" * 16, promote=True
        )
        return registry, entry

    def test_promote_writes_ranking_ready_arrays(self, registered, fitted):
        registry, entry = registered
        sidecar = registry._arrays_path(entry.version)
        assert sidecar.exists()
        with np.load(sidecar) as data:
            assert str(data["digest"]) == entry.digest
            assert data["features"].shape[0] == len(fitted["scalar"]._pairs)
            assert data["theta"].ndim == 3

        loaded, _ = registry.load(entry.version)
        assert loaded._tensors is not None
        assert np.array_equal(
            loaded._tensors.features, fitted["vector"]._tensors.features
        )
        assert np.array_equal(
            loaded._tensors.theta, fitted["vector"]._tensors.theta
        )

    def test_loaded_model_predicts_bit_identically(self, registered, fitted):
        registry, entry = registered
        training = fitted["training"]
        loaded, _ = registry.load(entry.version)
        counters = PerfCounters(*training.counters[1, 2, :])
        reference = fitted["scalar"].predict_distribution(
            counters, training.machines[2]
        )
        assert_distribution_exact(
            reference,
            loaded.predict_distribution(counters, training.machines[2]),
        )

    def test_corrupt_sidecar_falls_back_to_rebuild(self, registered, fitted):
        registry, entry = registered
        registry._arrays_path(entry.version).write_bytes(b"not an npz")
        loaded, _ = registry.load(entry.version)
        assert loaded._tensors is not None
        training = fitted["training"]
        counters = PerfCounters(*training.counters[0, 1, :])
        assert_distribution_exact(
            fitted["scalar"].predict_distribution(
                counters, training.machines[1]
            ),
            loaded.predict_distribution(counters, training.machines[1]),
        )

    def test_vectorize_false_load_skips_tensors(self, registered):
        registry, entry = registered
        loaded, _ = registry.load(entry.version, vectorize=False)
        assert loaded._tensors is None


class TestServiceBatchEquivalence:
    def test_batched_predict_matches_scalar_service_byte_for_byte(
        self, tmp_path, tiny_data
    ):
        """The acceptance gate: batched /predict answers from the vector
        service must serialise to the exact bytes the pre-PR scalar path
        produces."""
        trainer = Session("tiny", cache_dir=tmp_path, use_disk_cache=False)
        trainer.models.fit(tiny_data.training)
        trainer.models.register(promote=True)

        machine = dataclasses.asdict(tiny_data.training.machines[0])
        payload = {
            "items": [
                {"program": name, "machine": machine, "top": 3}
                for name in tiny_data.training.program_names[:3]
            ]
        }
        responses = {}
        for vectorize in (True, False):
            session = Session(
                "tiny",
                cache_dir=tmp_path,
                use_disk_cache=False,
                vectorize=vectorize,
            )
            service = PredictionService(session)
            model, _ = service._promoted_model()
            assert (model._tensors is not None) == vectorize
            responses[vectorize] = canonical_json(
                {"results": service.predict(payload)["results"]}
            )
        assert responses[True] == responses[False]


class TestRewiredCallSites:
    def test_vectorize_false_pins_the_scalar_model_reference(
        self, monkeypatch, tiny_data
    ):
        """With the ranking kernel poisoned, a vectorize=False session must
        still fit, rank, and fold — proof the knob selects the scalar
        reference everywhere the model tier was rewired."""

        def boom(*args, **kwargs):
            raise AssertionError(
                "model vector kernel used despite vectorize=False"
            )

        for attr in (
            "predict_distributions",
            "query_distances",
            "stable_topk",
            "nearest_neighbours",
            "stack_state_arrays",
        ):
            monkeypatch.setattr(model_vector, attr, boom)
        monkeypatch.setattr(
            model_vector.PredictorTensors, "from_pairs", boom
        )

        training = tiny_data.training
        session = Session("tiny", use_disk_cache=False, vectorize=False)
        model = session.models.fit(training)
        assert model._tensors is None

        counters = PerfCounters(*training.counters[0, 0, :])
        ranked = session.models.rank_counters(
            counters, training.machines[0], 3
        )
        assert len(ranked.settings) == 3
        assert model.predict_many([counters], [training.machines[0]])
        assert model.neighbours(counters, training.machines[0])

        from repro.evalrun.oracle import RuntimeOracle
        from repro.evalrun.pipeline import compute_fold
        from repro.evalrun.variants import BASE_VARIANT

        oracle = RuntimeOracle(
            training, tiny_data.programs, vectorize=False
        )
        record = compute_fold(
            training,
            BASE_VARIANT,
            training.program_names[0],
            oracle,
            model,
        )
        assert len(record.rows) == len(training.machines)
