"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` (or plain
``pip install -e .`` where wheel is available) both work; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
